//! Driver-side recovery machinery: completion retry with exponential
//! backoff, the HIR circuit breaker, and the engine's approximate-LRU
//! shadow for fallback evictions.
//!
//! The pieces here model how a hardened UVM driver reacts to the failures
//! the fault plan injects, instead of livelocking or silently degrading:
//!
//! * [`RetryPolicy`] replaces the plan's flat re-queue delay for lost
//!   fault completions with a bounded exponential-backoff schedule; when
//!   the attempt cap is hit the engine reports
//!   [`uvm_types::SimError::RetriesExhausted`] instead of spinning until
//!   the watchdog fires. The [`RetryPolicy::Adaptive`] mode additionally
//!   tunes the backoff base online from the observed completion-loss
//!   rate (a windowed [`LossEstimator`] the engine feeds with every
//!   completion outcome).
//! * [`CircuitBreaker`] counts HIR flushes lost in transit during a
//!   channel outage and trips once the loss is clearly not transient, so
//!   the GPU side can stop paying PCIe cycles for flushes that never
//!   arrive.
//! * [`LruShadow`] is a cheap engine-side recency map, giving the
//!   fallback-eviction path an approximate-LRU victim instead of the
//!   deterministic-but-arbitrary minimum page id.
//!
//! # Examples
//!
//! ```
//! use uvm_sim::RetryPolicy;
//!
//! let rp = RetryPolicy::default();
//! rp.validate().unwrap();
//! assert!(rp.delay_for(1) < rp.delay_for(3));
//! assert!(rp.delay_for(60) <= rp.backoff().max_delay_cycles);
//! ```

use std::collections::HashMap;

use uvm_types::{ConfigError, PageId};
use uvm_util::{impl_json_struct, json, FromJson, Json, JsonError, ToJson};

/// The exponential-backoff schedule shared by both retry modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// Delay before the first retry, in cycles.
    pub base_delay_cycles: u64,
    /// Multiplier applied to the delay after each consecutive loss.
    pub multiplier: u64,
    /// Upper bound on any single backoff delay.
    pub max_delay_cycles: u64,
    /// Consecutive losses tolerated before the driver gives up with
    /// [`uvm_types::SimError::RetriesExhausted`].
    pub max_attempts: u32,
}

impl_json_struct!(Backoff {
    base_delay_cycles = 2_000,
    multiplier = 2,
    max_delay_cycles = 64_000,
    max_attempts = 8,
});

impl Default for Backoff {
    fn default() -> Self {
        Backoff {
            base_delay_cycles: 2_000,
            multiplier: 2,
            max_delay_cycles: 64_000,
            max_attempts: 8,
        }
    }
}

impl Backoff {
    /// The backoff delay before retry number `attempt` (1-based):
    /// `base * multiplier^(attempt-1)`, saturating, capped at
    /// [`Backoff::max_delay_cycles`].
    pub fn delay_for(&self, attempt: u32) -> u64 {
        self.delay_from(self.base_delay_cycles, attempt)
    }

    /// The same schedule but starting from an elevated `base` (the
    /// adaptive mode raises the base toward the cap as observed loss
    /// grows).
    fn delay_from(&self, base: u64, attempt: u32) -> u64 {
        let mut delay = base;
        for _ in 1..attempt {
            delay = delay.saturating_mul(self.multiplier);
            if delay >= self.max_delay_cycles {
                return self.max_delay_cycles;
            }
        }
        delay.min(self.max_delay_cycles)
    }

    /// Validates the schedule.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] naming the first offending knob.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.base_delay_cycles == 0 {
            return Err(ConfigError::invalid(
                "base_delay_cycles",
                "must be nonzero (a zero-delay retry would re-fire in the same cycle)",
            ));
        }
        if self.multiplier < 2 {
            return Err(ConfigError::invalid(
                "multiplier",
                "must be at least 2 for an exponential backoff",
            ));
        }
        if self.max_delay_cycles < self.base_delay_cycles {
            return Err(ConfigError::invalid(
                "max_delay_cycles",
                "must be at least base_delay_cycles",
            ));
        }
        if self.max_attempts == 0 {
            return Err(ConfigError::invalid(
                "max_attempts",
                "must be nonzero (zero attempts could never deliver a completion)",
            ));
        }
        Ok(())
    }
}

/// Loss-adaptive backoff: the schedule's base delay is raised online in
/// proportion to the completion-loss rate observed over the last
/// [`AdaptiveBackoff::loss_window`] completions.
///
/// With `lost` of `observed` recent completions lost in transit, the
/// effective base is `base + (max - base) * lost / observed` (integer
/// math, no floats), so a loss-free channel retries as eagerly as
/// [`RetryPolicy::Fixed`] while a lossy one backs off toward the cap
/// immediately instead of climbing there one attempt at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveBackoff {
    /// The underlying schedule (bounds and attempt cap).
    pub backoff: Backoff,
    /// How many recent completion outcomes feed the loss estimate
    /// (1..=64: the estimator keeps them in a 64-bit ring).
    pub loss_window: u32,
}

impl Default for AdaptiveBackoff {
    fn default() -> Self {
        AdaptiveBackoff {
            backoff: Backoff::default(),
            loss_window: 32,
        }
    }
}

impl AdaptiveBackoff {
    /// The delay before retry number `attempt` (1-based) given `lost`
    /// losses among the last `observed` completion outcomes.
    pub fn delay_for(&self, attempt: u32, lost: u32, observed: u32) -> u64 {
        let b = &self.backoff;
        let base = if observed == 0 {
            b.base_delay_cycles
        } else {
            let span = b.max_delay_cycles.saturating_sub(b.base_delay_cycles);
            let lost = u64::from(lost.min(observed));
            b.base_delay_cycles + span.saturating_mul(lost) / u64::from(observed)
        };
        b.delay_from(base, attempt)
    }

    /// Validates the schedule and the estimator window.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] naming the first offending knob.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.backoff.validate()?;
        if self.loss_window == 0 || self.loss_window > 64 {
            return Err(ConfigError::invalid(
                "loss_window",
                "must be in 1..=64 (the loss estimator keeps outcomes in a 64-bit ring)",
            ));
        }
        Ok(())
    }
}

/// How the driver retries a lost fault-completion signal.
///
/// Installed with `Simulation::set_retry_policy`. Without one, a lost
/// completion is re-queued after the fault plan's flat `retry_cycles`
/// forever (the pre-recovery behavior, where an unbounded loss becomes a
/// watchdog [`uvm_types::SimError::Stalled`]).
///
/// JSON carries a `"mode"` tag (`"fixed"` / `"adaptive"`) next to the
/// flat [`Backoff`] fields; documents without the tag (pre-adaptive
/// snapshots) parse as [`RetryPolicy::Fixed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryPolicy {
    /// A static exponential-backoff schedule.
    Fixed(Backoff),
    /// Backoff whose base tracks the observed completion-loss rate.
    Adaptive(AdaptiveBackoff),
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::Fixed(Backoff::default())
    }
}

impl RetryPolicy {
    /// The default loss-adaptive policy.
    pub fn adaptive() -> Self {
        RetryPolicy::Adaptive(AdaptiveBackoff::default())
    }

    /// The underlying backoff schedule of either mode.
    pub fn backoff(&self) -> Backoff {
        match self {
            RetryPolicy::Fixed(b) => *b,
            RetryPolicy::Adaptive(a) => a.backoff,
        }
    }

    /// Consecutive losses tolerated before
    /// [`uvm_types::SimError::RetriesExhausted`].
    pub fn max_attempts(&self) -> u32 {
        self.backoff().max_attempts
    }

    /// The estimator window, when the policy is adaptive.
    pub fn loss_window(&self) -> Option<u32> {
        match self {
            RetryPolicy::Fixed(_) => None,
            RetryPolicy::Adaptive(a) => Some(a.loss_window),
        }
    }

    /// Short mode label for reports and CLI flags.
    pub fn mode_label(&self) -> &'static str {
        match self {
            RetryPolicy::Fixed(_) => "fixed",
            RetryPolicy::Adaptive(_) => "adaptive",
        }
    }

    /// The static schedule's delay before retry number `attempt`
    /// (1-based) — the zero-observed-loss delay for the adaptive mode.
    pub fn delay_for(&self, attempt: u32) -> u64 {
        self.backoff().delay_for(attempt)
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] naming the first offending knob.
    pub fn validate(&self) -> Result<(), ConfigError> {
        match self {
            RetryPolicy::Fixed(b) => b.validate(),
            RetryPolicy::Adaptive(a) => a.validate(),
        }
    }
}

impl ToJson for RetryPolicy {
    fn to_json(&self) -> Json {
        let b = self.backoff();
        match self {
            RetryPolicy::Fixed(_) => json!({
                "mode": "fixed",
                "base_delay_cycles": b.base_delay_cycles,
                "multiplier": b.multiplier,
                "max_delay_cycles": b.max_delay_cycles,
                "max_attempts": b.max_attempts,
            }),
            RetryPolicy::Adaptive(a) => json!({
                "mode": "adaptive",
                "base_delay_cycles": b.base_delay_cycles,
                "multiplier": b.multiplier,
                "max_delay_cycles": b.max_delay_cycles,
                "max_attempts": b.max_attempts,
                "loss_window": a.loss_window,
            }),
        }
    }
}

impl FromJson for RetryPolicy {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let backoff = Backoff::from_json(v)?;
        match v.get("mode").map(Json::as_str) {
            // Pre-adaptive documents carried no tag: they were all fixed.
            None | Some(Some("fixed")) => Ok(RetryPolicy::Fixed(backoff)),
            Some(Some("adaptive")) => {
                let loss_window = match v.get("loss_window") {
                    Some(x) => u32::from_json(x)?,
                    None => AdaptiveBackoff::default().loss_window,
                };
                Ok(RetryPolicy::Adaptive(AdaptiveBackoff {
                    backoff,
                    loss_window,
                }))
            }
            Some(_) => Err(JsonError::new(
                "retry `mode` must be \"fixed\" or \"adaptive\"",
            )),
        }
    }
}

/// Windowed completion-loss estimator feeding [`RetryPolicy::Adaptive`].
///
/// A shift register of the last `window` completion outcomes (bit set =
/// lost in transit), recorded by the engine on every completion event.
/// Integer-only, branch-free math so the estimate — and therefore the
/// whole simulation — stays bit-deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LossEstimator {
    window: u32,
    bits: u64,
    len: u32,
}

impl LossEstimator {
    pub(crate) fn new(window: u32) -> Self {
        LossEstimator {
            window: window.clamp(1, 64),
            bits: 0,
            len: 0,
        }
    }

    /// Records one completion outcome (`true` = lost in transit).
    pub(crate) fn record(&mut self, lost: bool) {
        let mask = if self.window == 64 {
            u64::MAX
        } else {
            (1u64 << self.window) - 1
        };
        self.bits = ((self.bits << 1) | u64::from(lost)) & mask;
        self.len = (self.len + 1).min(self.window);
    }

    /// Losses among the observed outcomes.
    pub(crate) fn lost(&self) -> u32 {
        self.bits.count_ones()
    }

    /// Outcomes observed so far (saturates at the window).
    pub(crate) fn observed(&self) -> u32 {
        self.len
    }

    /// Fingerprint for checkpoint verification.
    pub(crate) fn fingerprint(&self) -> (u64, u32) {
        (self.bits, self.len)
    }

    /// Validates the ring (sanitizer hook): the observation count never
    /// exceeds the window and no bits live beyond it.
    pub(crate) fn check_invariants(&self) -> Result<(), String> {
        if self.len > self.window {
            return Err(format!(
                "loss estimator observed {} outcomes against a window of {}",
                self.len, self.window
            ));
        }
        if self.window < 64 && self.bits >> self.window != 0 {
            return Err(format!(
                "loss estimator has outcome bits beyond its {}-wide window",
                self.window
            ));
        }
        Ok(())
    }
}

/// A count-based circuit breaker on the HIR channel.
///
/// The engine records one failure per flush lost in transit; at
/// `threshold` failures the breaker trips (returns `true` exactly once)
/// and stays open until [`CircuitBreaker::reset`] — which the engine
/// calls when the injected outage ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CircuitBreaker {
    threshold: u32,
    failures: u32,
    open: bool,
}

impl CircuitBreaker {
    pub(crate) fn new(threshold: u32) -> Self {
        CircuitBreaker {
            threshold,
            failures: 0,
            open: false,
        }
    }

    /// Records one lost flush; returns `true` on the failure that trips
    /// the breaker open (only that one — callers emit the open signal
    /// exactly once).
    pub(crate) fn record_failure(&mut self) -> bool {
        if self.open {
            return false;
        }
        self.failures += 1;
        if self.failures >= self.threshold {
            self.open = true;
            return true;
        }
        false
    }

    /// Whether the breaker is currently open.
    #[cfg(test)]
    pub(crate) fn is_open(&self) -> bool {
        self.open
    }

    /// Closes the breaker and clears the failure count; returns `true` if
    /// it had been open (so callers can emit the close signal).
    pub(crate) fn reset(&mut self) -> bool {
        let was_open = self.open;
        self.failures = 0;
        self.open = false;
        was_open
    }

    /// Fingerprint for checkpoint verification.
    pub(crate) fn fingerprint(&self) -> (u32, bool) {
        (self.failures, self.open)
    }

    /// Validates the breaker's state machine (sanitizer hook): the
    /// breaker is open exactly when the failure count has reached the
    /// threshold (it trips at the threshold and stops counting while
    /// open).
    pub(crate) fn check_invariants(&self) -> Result<(), String> {
        let should_be_open = self.failures >= self.threshold;
        if self.open != should_be_open {
            return Err(format!(
                "circuit breaker open={} with {} failures against threshold {}",
                self.open, self.failures, self.threshold
            ));
        }
        Ok(())
    }
}

/// Which victim the engine evicts when the policy offers none (or its
/// answer was dropped in transit by the fault plan).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FallbackVictim {
    /// The lowest-numbered resident page: deterministic and free, but
    /// recency-blind (the pre-recovery behavior and the default).
    #[default]
    MinPage,
    /// An approximate-LRU page from the engine's recency shadow.
    LruShadow,
}

impl FallbackVictim {
    /// Short label for reports and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            FallbackVictim::MinPage => "min-page",
            FallbackVictim::LruShadow => "lru-shadow",
        }
    }

    /// Parses a CLI label (`min-page` / `lru-shadow`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "min-page" => Some(FallbackVictim::MinPage),
            "lru-shadow" => Some(FallbackVictim::LruShadow),
            _ => None,
        }
    }
}

/// A cheap recency shadow over resident pages, maintained by the engine
/// only when [`FallbackVictim::LruShadow`] is selected.
///
/// Stamps are a logical clock bumped on every touch; the fallback victim
/// is the resident page with the smallest stamp (ties broken by page id,
/// though stamps are unique in practice).
#[derive(Debug, Default)]
pub(crate) struct LruShadow {
    stamps: HashMap<PageId, u64>,
    clock: u64,
}

impl LruShadow {
    /// Marks `page` as most recently used.
    pub(crate) fn touch(&mut self, page: PageId) {
        self.clock += 1;
        self.stamps.insert(page, self.clock);
    }

    /// Forgets an evicted page.
    pub(crate) fn remove(&mut self, page: PageId) {
        self.stamps.remove(&page);
    }

    /// The approximately least-recently-used page, if any is tracked.
    pub(crate) fn lru(&self) -> Option<PageId> {
        self.stamps
            .iter() // lint:allow(hash-iteration)
            .min_by_key(|&(page, stamp)| (*stamp, *page))
            .map(|(&page, _)| page)
    }

    /// Fingerprint for checkpoint verification.
    pub(crate) fn fingerprint(&self) -> (u64, u64) {
        (self.stamps.len() as u64, self.clock)
    }

    /// Validates the shadow against the engine's resident set (sanitizer
    /// hook): the clock is monotone so no more stamps than clock ticks
    /// can exist, every stamp lies in `1..=clock`, and every tracked
    /// page is actually resident.
    pub(crate) fn check_invariants(&self, resident: &dyn Fn(PageId) -> bool) -> Result<(), String> {
        if self.stamps.len() as u64 > self.clock {
            return Err(format!(
                "LRU shadow tracks {} pages but its clock only reached {}",
                self.stamps.len(),
                self.clock
            ));
        }
        // Reduced to the minimal offending page so the report is
        // independent of hash visit order.
        let mut bad_stamp: Option<PageId> = None;
        let mut missing: Option<PageId> = None;
        for (&page, &stamp) in &self.stamps {
            // lint:allow(hash-iteration)
            if stamp == 0 || stamp > self.clock {
                bad_stamp = Some(bad_stamp.map_or(page, |p| p.min(page)));
            }
            if !resident(page) {
                missing = Some(missing.map_or(page, |p| p.min(page)));
            }
        }
        if let Some(page) = bad_stamp {
            return Err(format!(
                "LRU shadow stamp for page {page} is outside 1..={}",
                self.clock
            ));
        }
        if let Some(page) = missing {
            return Err(format!("LRU shadow tracks non-resident page {page}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvm_util::{FromJson, Json, ToJson};

    #[test]
    fn backoff_grows_and_caps() {
        let rp = RetryPolicy::Fixed(Backoff {
            base_delay_cycles: 1_000,
            multiplier: 2,
            max_delay_cycles: 10_000,
            max_attempts: 8,
        });
        assert_eq!(rp.delay_for(1), 1_000);
        assert_eq!(rp.delay_for(2), 2_000);
        assert_eq!(rp.delay_for(3), 4_000);
        assert_eq!(rp.delay_for(4), 8_000);
        assert_eq!(rp.delay_for(5), 10_000);
        assert_eq!(rp.delay_for(64), 10_000, "saturates instead of wrapping");
    }

    #[test]
    fn retry_policy_validates() {
        RetryPolicy::default().validate().unwrap();
        RetryPolicy::adaptive().validate().unwrap();
        for bad in [
            Backoff {
                base_delay_cycles: 0,
                ..Backoff::default()
            },
            Backoff {
                multiplier: 1,
                ..Backoff::default()
            },
            Backoff {
                max_delay_cycles: 1,
                ..Backoff::default()
            },
            Backoff {
                max_attempts: 0,
                ..Backoff::default()
            },
        ] {
            assert!(
                RetryPolicy::Fixed(bad).validate().is_err(),
                "{bad:?} must be rejected"
            );
            let adaptive = RetryPolicy::Adaptive(AdaptiveBackoff {
                backoff: bad,
                loss_window: 32,
            });
            assert!(adaptive.validate().is_err(), "adaptive {bad:?} rejected");
        }
        for window in [0, 65] {
            let bad = RetryPolicy::Adaptive(AdaptiveBackoff {
                backoff: Backoff::default(),
                loss_window: window,
            });
            let msg = bad.validate().unwrap_err().to_string();
            assert!(msg.contains("loss_window"), "{msg}");
        }
    }

    #[test]
    fn adaptive_base_tracks_loss_rate() {
        let a = AdaptiveBackoff {
            backoff: Backoff {
                base_delay_cycles: 1_000,
                multiplier: 2,
                max_delay_cycles: 9_000,
                max_attempts: 8,
            },
            loss_window: 16,
        };
        // No observations yet: identical to the fixed schedule.
        assert_eq!(a.delay_for(1, 0, 0), 1_000);
        assert_eq!(a.delay_for(2, 0, 0), 2_000);
        // Loss-free channel: still the fixed schedule.
        assert_eq!(a.delay_for(1, 0, 16), 1_000);
        // Half the window lost: base jumps halfway to the cap.
        assert_eq!(a.delay_for(1, 8, 16), 5_000);
        // Everything lost: first retry already waits the cap.
        assert_eq!(a.delay_for(1, 16, 16), 9_000);
        assert_eq!(a.delay_for(8, 16, 16), 9_000, "still capped");
        // An elevated base still grows exponentially under the cap.
        assert_eq!(a.delay_for(2, 4, 16), 6_000);
    }

    #[test]
    fn retry_policy_json_roundtrip_with_defaults() {
        let rp = RetryPolicy::Fixed(Backoff {
            base_delay_cycles: 500,
            multiplier: 3,
            max_delay_cycles: 9_000,
            max_attempts: 4,
        });
        let back = RetryPolicy::from_json(&rp.to_json()).unwrap();
        assert_eq!(back, rp);

        // Pre-adaptive documents carry no mode tag and parse as Fixed.
        let sparse = Json::parse(r#"{"max_attempts": 2}"#).unwrap();
        let p = RetryPolicy::from_json(&sparse).unwrap();
        assert_eq!(p.max_attempts(), 2);
        assert_eq!(p.mode_label(), "fixed");
        assert_eq!(
            p.backoff().base_delay_cycles,
            Backoff::default().base_delay_cycles
        );

        let adaptive = RetryPolicy::Adaptive(AdaptiveBackoff {
            backoff: Backoff::default(),
            loss_window: 48,
        });
        let text = adaptive.to_json().to_string();
        assert!(text.contains("\"mode\":\"adaptive\""), "{text}");
        let back = RetryPolicy::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, adaptive);

        let sparse_adaptive = Json::parse(r#"{"mode": "adaptive"}"#).unwrap();
        let p = RetryPolicy::from_json(&sparse_adaptive).unwrap();
        assert_eq!(p.loss_window(), Some(32), "window defaults");

        let bad_mode = Json::parse(r#"{"mode": "frantic"}"#).unwrap();
        assert!(RetryPolicy::from_json(&bad_mode).is_err());
    }

    #[test]
    fn loss_estimator_windows_and_counts() {
        let mut e = LossEstimator::new(4);
        assert_eq!((e.lost(), e.observed()), (0, 0));
        e.record(true);
        e.record(false);
        e.record(true);
        assert_eq!((e.lost(), e.observed()), (2, 3));
        e.record(true);
        assert_eq!((e.lost(), e.observed()), (3, 4));
        // The window slides: the oldest (lost) outcome falls off.
        e.record(false);
        assert_eq!((e.lost(), e.observed()), (2, 4));
        e.check_invariants().unwrap();
        // Degenerate windows clamp instead of shifting out of range.
        let mut wide = LossEstimator::new(1_000);
        for _ in 0..100 {
            wide.record(true);
        }
        assert_eq!((wide.lost(), wide.observed()), (64, 64));
        wide.check_invariants().unwrap();
        let fp = wide.fingerprint();
        assert_eq!(fp, (u64::MAX, 64));
    }

    #[test]
    fn breaker_trips_once_and_resets() {
        let mut b = CircuitBreaker::new(3);
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        assert!(b.record_failure(), "third failure trips");
        assert!(b.is_open());
        assert!(!b.record_failure(), "already open: no second trip");
        assert!(b.reset(), "reset reports it had been open");
        assert!(!b.is_open());
        assert!(!b.reset(), "reset of a closed breaker is a no-op");
        assert!(!b.record_failure(), "count restarts after reset");
    }

    #[test]
    fn shadow_tracks_recency() {
        let mut s = LruShadow::default();
        assert_eq!(s.lru(), None);
        s.touch(PageId(5));
        s.touch(PageId(3));
        s.touch(PageId(9));
        assert_eq!(s.lru(), Some(PageId(5)));
        s.touch(PageId(5)); // re-touch: 3 is now coldest
        assert_eq!(s.lru(), Some(PageId(3)));
        s.remove(PageId(3));
        assert_eq!(s.lru(), Some(PageId(9)));
    }

    #[test]
    fn fallback_labels_roundtrip() {
        for f in [FallbackVictim::MinPage, FallbackVictim::LruShadow] {
            assert_eq!(FallbackVictim::parse(f.label()), Some(f));
        }
        assert_eq!(FallbackVictim::parse("nope"), None);
    }
}
