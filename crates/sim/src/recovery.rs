//! Driver-side recovery machinery: completion retry with exponential
//! backoff, the HIR circuit breaker, and the engine's approximate-LRU
//! shadow for fallback evictions.
//!
//! The pieces here model how a hardened UVM driver reacts to the failures
//! the fault plan injects, instead of livelocking or silently degrading:
//!
//! * [`RetryPolicy`] replaces the plan's flat re-queue delay for lost
//!   fault completions with a bounded exponential-backoff schedule; when
//!   the attempt cap is hit the engine reports
//!   [`uvm_types::SimError::RetriesExhausted`] instead of spinning until
//!   the watchdog fires.
//! * [`CircuitBreaker`] counts HIR flushes lost in transit during a
//!   channel outage and trips once the loss is clearly not transient, so
//!   the GPU side can stop paying PCIe cycles for flushes that never
//!   arrive.
//! * [`LruShadow`] is a cheap engine-side recency map, giving the
//!   fallback-eviction path an approximate-LRU victim instead of the
//!   deterministic-but-arbitrary minimum page id.
//!
//! # Examples
//!
//! ```
//! use uvm_sim::RetryPolicy;
//!
//! let rp = RetryPolicy::default();
//! rp.validate().unwrap();
//! assert!(rp.delay_for(1) < rp.delay_for(3));
//! assert!(rp.delay_for(60) <= rp.max_delay_cycles);
//! ```

use std::collections::HashMap;

use uvm_types::{ConfigError, PageId};
use uvm_util::impl_json_struct;

/// How the driver retries a lost fault-completion signal.
///
/// Installed with `Simulation::set_retry_policy`. Without one, a lost
/// completion is re-queued after the fault plan's flat `retry_cycles`
/// forever (the pre-recovery behavior, where an unbounded loss becomes a
/// watchdog [`uvm_types::SimError::Stalled`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Delay before the first retry, in cycles.
    pub base_delay_cycles: u64,
    /// Multiplier applied to the delay after each consecutive loss.
    pub multiplier: u64,
    /// Upper bound on any single backoff delay.
    pub max_delay_cycles: u64,
    /// Consecutive losses tolerated before the driver gives up with
    /// [`uvm_types::SimError::RetriesExhausted`].
    pub max_attempts: u32,
}

impl_json_struct!(RetryPolicy {
    base_delay_cycles = 2_000,
    multiplier = 2,
    max_delay_cycles = 64_000,
    max_attempts = 8,
});

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_delay_cycles: 2_000,
            multiplier: 2,
            max_delay_cycles: 64_000,
            max_attempts: 8,
        }
    }
}

impl RetryPolicy {
    /// The backoff delay before retry number `attempt` (1-based):
    /// `base * multiplier^(attempt-1)`, saturating, capped at
    /// [`RetryPolicy::max_delay_cycles`].
    pub fn delay_for(&self, attempt: u32) -> u64 {
        let mut delay = self.base_delay_cycles;
        for _ in 1..attempt {
            delay = delay.saturating_mul(self.multiplier);
            if delay >= self.max_delay_cycles {
                return self.max_delay_cycles;
            }
        }
        delay.min(self.max_delay_cycles)
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] naming the first offending knob.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.base_delay_cycles == 0 {
            return Err(ConfigError::invalid(
                "base_delay_cycles",
                "must be nonzero (a zero-delay retry would re-fire in the same cycle)",
            ));
        }
        if self.multiplier < 2 {
            return Err(ConfigError::invalid(
                "multiplier",
                "must be at least 2 for an exponential backoff",
            ));
        }
        if self.max_delay_cycles < self.base_delay_cycles {
            return Err(ConfigError::invalid(
                "max_delay_cycles",
                "must be at least base_delay_cycles",
            ));
        }
        if self.max_attempts == 0 {
            return Err(ConfigError::invalid(
                "max_attempts",
                "must be nonzero (zero attempts could never deliver a completion)",
            ));
        }
        Ok(())
    }
}

/// A count-based circuit breaker on the HIR channel.
///
/// The engine records one failure per flush lost in transit; at
/// `threshold` failures the breaker trips (returns `true` exactly once)
/// and stays open until [`CircuitBreaker::reset`] — which the engine
/// calls when the injected outage ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CircuitBreaker {
    threshold: u32,
    failures: u32,
    open: bool,
}

impl CircuitBreaker {
    pub(crate) fn new(threshold: u32) -> Self {
        CircuitBreaker {
            threshold,
            failures: 0,
            open: false,
        }
    }

    /// Records one lost flush; returns `true` on the failure that trips
    /// the breaker open (only that one — callers emit the open signal
    /// exactly once).
    pub(crate) fn record_failure(&mut self) -> bool {
        if self.open {
            return false;
        }
        self.failures += 1;
        if self.failures >= self.threshold {
            self.open = true;
            return true;
        }
        false
    }

    /// Whether the breaker is currently open.
    #[cfg(test)]
    pub(crate) fn is_open(&self) -> bool {
        self.open
    }

    /// Closes the breaker and clears the failure count; returns `true` if
    /// it had been open (so callers can emit the close signal).
    pub(crate) fn reset(&mut self) -> bool {
        let was_open = self.open;
        self.failures = 0;
        self.open = false;
        was_open
    }

    /// Fingerprint for checkpoint verification.
    pub(crate) fn fingerprint(&self) -> (u32, bool) {
        (self.failures, self.open)
    }

    /// Validates the breaker's state machine (sanitizer hook): the
    /// breaker is open exactly when the failure count has reached the
    /// threshold (it trips at the threshold and stops counting while
    /// open).
    pub(crate) fn check_invariants(&self) -> Result<(), String> {
        let should_be_open = self.failures >= self.threshold;
        if self.open != should_be_open {
            return Err(format!(
                "circuit breaker open={} with {} failures against threshold {}",
                self.open, self.failures, self.threshold
            ));
        }
        Ok(())
    }
}

/// Which victim the engine evicts when the policy offers none (or its
/// answer was dropped in transit by the fault plan).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FallbackVictim {
    /// The lowest-numbered resident page: deterministic and free, but
    /// recency-blind (the pre-recovery behavior and the default).
    #[default]
    MinPage,
    /// An approximate-LRU page from the engine's recency shadow.
    LruShadow,
}

impl FallbackVictim {
    /// Short label for reports and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            FallbackVictim::MinPage => "min-page",
            FallbackVictim::LruShadow => "lru-shadow",
        }
    }

    /// Parses a CLI label (`min-page` / `lru-shadow`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "min-page" => Some(FallbackVictim::MinPage),
            "lru-shadow" => Some(FallbackVictim::LruShadow),
            _ => None,
        }
    }
}

/// A cheap recency shadow over resident pages, maintained by the engine
/// only when [`FallbackVictim::LruShadow`] is selected.
///
/// Stamps are a logical clock bumped on every touch; the fallback victim
/// is the resident page with the smallest stamp (ties broken by page id,
/// though stamps are unique in practice).
#[derive(Debug, Default)]
pub(crate) struct LruShadow {
    stamps: HashMap<PageId, u64>,
    clock: u64,
}

impl LruShadow {
    /// Marks `page` as most recently used.
    pub(crate) fn touch(&mut self, page: PageId) {
        self.clock += 1;
        self.stamps.insert(page, self.clock);
    }

    /// Forgets an evicted page.
    pub(crate) fn remove(&mut self, page: PageId) {
        self.stamps.remove(&page);
    }

    /// The approximately least-recently-used page, if any is tracked.
    pub(crate) fn lru(&self) -> Option<PageId> {
        self.stamps
            .iter() // lint:allow(hash-iteration)
            .min_by_key(|&(page, stamp)| (*stamp, *page))
            .map(|(&page, _)| page)
    }

    /// Fingerprint for checkpoint verification.
    pub(crate) fn fingerprint(&self) -> (u64, u64) {
        (self.stamps.len() as u64, self.clock)
    }

    /// Validates the shadow against the engine's resident set (sanitizer
    /// hook): the clock is monotone so no more stamps than clock ticks
    /// can exist, every stamp lies in `1..=clock`, and every tracked
    /// page is actually resident.
    pub(crate) fn check_invariants(&self, resident: &dyn Fn(PageId) -> bool) -> Result<(), String> {
        if self.stamps.len() as u64 > self.clock {
            return Err(format!(
                "LRU shadow tracks {} pages but its clock only reached {}",
                self.stamps.len(),
                self.clock
            ));
        }
        // Reduced to the minimal offending page so the report is
        // independent of hash visit order.
        let mut bad_stamp: Option<PageId> = None;
        let mut missing: Option<PageId> = None;
        for (&page, &stamp) in &self.stamps {
            // lint:allow(hash-iteration)
            if stamp == 0 || stamp > self.clock {
                bad_stamp = Some(bad_stamp.map_or(page, |p| p.min(page)));
            }
            if !resident(page) {
                missing = Some(missing.map_or(page, |p| p.min(page)));
            }
        }
        if let Some(page) = bad_stamp {
            return Err(format!(
                "LRU shadow stamp for page {page} is outside 1..={}",
                self.clock
            ));
        }
        if let Some(page) = missing {
            return Err(format!("LRU shadow tracks non-resident page {page}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvm_util::{FromJson, Json, ToJson};

    #[test]
    fn backoff_grows_and_caps() {
        let rp = RetryPolicy {
            base_delay_cycles: 1_000,
            multiplier: 2,
            max_delay_cycles: 10_000,
            max_attempts: 8,
        };
        assert_eq!(rp.delay_for(1), 1_000);
        assert_eq!(rp.delay_for(2), 2_000);
        assert_eq!(rp.delay_for(3), 4_000);
        assert_eq!(rp.delay_for(4), 8_000);
        assert_eq!(rp.delay_for(5), 10_000);
        assert_eq!(rp.delay_for(64), 10_000, "saturates instead of wrapping");
    }

    #[test]
    fn retry_policy_validates() {
        RetryPolicy::default().validate().unwrap();
        for bad in [
            RetryPolicy {
                base_delay_cycles: 0,
                ..RetryPolicy::default()
            },
            RetryPolicy {
                multiplier: 1,
                ..RetryPolicy::default()
            },
            RetryPolicy {
                max_delay_cycles: 1,
                ..RetryPolicy::default()
            },
            RetryPolicy {
                max_attempts: 0,
                ..RetryPolicy::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn retry_policy_json_roundtrip_with_defaults() {
        let rp = RetryPolicy {
            base_delay_cycles: 500,
            multiplier: 3,
            max_delay_cycles: 9_000,
            max_attempts: 4,
        };
        let back = RetryPolicy::from_json(&rp.to_json()).unwrap();
        assert_eq!(back, rp);
        let sparse = Json::parse(r#"{"max_attempts": 2}"#).unwrap();
        let p = RetryPolicy::from_json(&sparse).unwrap();
        assert_eq!(p.max_attempts, 2);
        assert_eq!(
            p.base_delay_cycles,
            RetryPolicy::default().base_delay_cycles
        );
    }

    #[test]
    fn breaker_trips_once_and_resets() {
        let mut b = CircuitBreaker::new(3);
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        assert!(b.record_failure(), "third failure trips");
        assert!(b.is_open());
        assert!(!b.record_failure(), "already open: no second trip");
        assert!(b.reset(), "reset reports it had been open");
        assert!(!b.is_open());
        assert!(!b.reset(), "reset of a closed breaker is a no-op");
        assert!(!b.record_failure(), "count restarts after reset");
    }

    #[test]
    fn shadow_tracks_recency() {
        let mut s = LruShadow::default();
        assert_eq!(s.lru(), None);
        s.touch(PageId(5));
        s.touch(PageId(3));
        s.touch(PageId(9));
        assert_eq!(s.lru(), Some(PageId(5)));
        s.touch(PageId(5)); // re-touch: 3 is now coldest
        assert_eq!(s.lru(), Some(PageId(3)));
        s.remove(PageId(3));
        assert_eq!(s.lru(), Some(PageId(9)));
    }

    #[test]
    fn fallback_labels_roundtrip() {
        for f in [FallbackVictim::MinPage, FallbackVictim::LruShadow] {
            assert_eq!(FallbackVictim::parse(f.label()), Some(f));
        }
        assert_eq!(FallbackVictim::parse("nope"), None);
    }
}
