//! Seeded fault injection for chaos campaigns.
//!
//! A [`FaultPlan`] describes a replayable set of perturbations applied to
//! the engine while it runs: jittered and tail fault-service latency,
//! interconnect congestion windows that inflate transfer time, lost
//! fault-completion signals (retried by the driver, or never delivered —
//! a livelock the watchdog converts into [`uvm_types::SimError::Stalled`]),
//! GPU→driver HIR-channel outages, and spurious wrong-eviction reports.
//!
//! All randomness comes from one xoshiro256** stream seeded by
//! [`FaultPlan::seed`], and every draw is gated on its knob being enabled,
//! so two runs with the same plan perturb identically and
//! [`FaultPlan::none`] leaves the simulation byte-identical to an
//! uninstrumented run.
//!
//! # Examples
//!
//! ```
//! use uvm_sim::FaultPlan;
//!
//! let plan = FaultPlan::latency_storm(7);
//! plan.validate().unwrap();
//! assert!(!plan.is_noop());
//! assert!(FaultPlan::none().is_noop());
//! ```

use uvm_types::{ConfigError, ResilienceStats};
use uvm_util::{
    check_unknown_fields, impl_json_enum, impl_json_struct, FromJson, Json, JsonError, Rng, ToJson,
};

/// The fault mechanism a deterministic [`FaultWindow`] activates.
///
/// Each family maps onto one of the plan's probabilistic knobs, but a
/// window fires the effect *unconditionally* while the simulation clock
/// is inside it — no RNG draw — so window placements can be enumerated
/// exhaustively by the exploration engine and two runs with the same
/// windows perturb identically regardless of seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultFamily {
    /// HIR-flush transfer cycles are multiplied by `congestion_factor`.
    Congestion,
    /// Every fault-completion signal is lost and re-queued after
    /// `retry_cycles` (or routed through the driver's retry policy).
    CompletionLoss,
    /// The GPU→driver HIR channel is down.
    HirOutage,
    /// Every serviced fault delivers a spurious wrong-eviction report.
    SpuriousSignal,
    /// Every service window delays the next HIR flush by
    /// `hir_delay_faults` in transit.
    FlushDelay,
    /// Every victim response from the policy is dropped in transit.
    VictimDrop,
    /// Every fault service is stretched by `tail_multiplier`.
    LatencyTail,
}

impl_json_enum!(FaultFamily {
    Congestion,
    CompletionLoss,
    HirOutage,
    SpuriousSignal,
    FlushDelay,
    VictimDrop,
    LatencyTail,
});

impl FaultFamily {
    /// All families in canonical (enumeration) order.
    pub const ALL: [FaultFamily; 7] = [
        FaultFamily::Congestion,
        FaultFamily::CompletionLoss,
        FaultFamily::HirOutage,
        FaultFamily::SpuriousSignal,
        FaultFamily::FlushDelay,
        FaultFamily::VictimDrop,
        FaultFamily::LatencyTail,
    ];

    /// Short kebab-case label for CLI flags and diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            FaultFamily::Congestion => "congestion",
            FaultFamily::CompletionLoss => "completion-loss",
            FaultFamily::HirOutage => "hir-outage",
            FaultFamily::SpuriousSignal => "spurious-signal",
            FaultFamily::FlushDelay => "flush-delay",
            FaultFamily::VictimDrop => "victim-drop",
            FaultFamily::LatencyTail => "latency-tail",
        }
    }

    /// Parses a CLI label (inverse of [`Self::label`]).
    pub fn parse(s: &str) -> Option<Self> {
        FaultFamily::ALL.into_iter().find(|f| f.label() == s)
    }
}

/// A deterministic fault window on the simulation cycle axis: the
/// family's effect is active for every event with `start <= cycle <
/// start + width`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    /// Which fault mechanism the window activates.
    pub family: FaultFamily,
    /// First active cycle.
    pub start: u64,
    /// Width in cycles (must be nonzero; `start + width` is exclusive).
    pub width: u64,
}

impl_json_struct!(FaultWindow {
    family,
    start,
    width
});

impl FaultWindow {
    /// Whether `cycle` falls inside this window.
    pub fn contains(&self, cycle: u64) -> bool {
        cycle >= self.start && cycle - self.start < self.width
    }

    /// Exclusive end cycle (saturating).
    pub fn end(&self) -> u64 {
        self.start.saturating_add(self.width)
    }
}

/// A replayable fault-injection plan (all perturbations off by default).
///
/// Fields with probability semantics are fractions in `[0, 1]`; periods
/// of `0` disable their perturbation entirely.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the injection RNG stream.
    pub seed: u64,
    /// Uniform ±fraction applied to the base fault-service latency
    /// (e.g. `0.25` draws from `[0.75x, 1.25x]`). Must be in `[0, 1)`.
    pub latency_jitter: f64,
    /// Probability that one fault service lands in the latency tail.
    pub tail_probability: f64,
    /// Multiplier applied to the whole service time on a tail event.
    pub tail_multiplier: u64,
    /// Cycle length of the interconnect congestion square wave (0 = off).
    pub congestion_period: u64,
    /// Fraction of each congestion period that is congested.
    pub congestion_duty: f64,
    /// Multiplier on HIR-flush transfer cycles inside a congested window.
    pub congestion_factor: u64,
    /// Probability that a fault-completion signal is lost in transit and
    /// must be retried by the driver.
    pub completion_loss_probability: f64,
    /// Cycles between completion retries.
    pub retry_cycles: u64,
    /// Consecutive losses after which the completion finally gets
    /// through. `None` retries forever: an injected livelock that the
    /// forward-progress watchdog must convert into a typed error.
    pub max_completion_retries: Option<u32>,
    /// Fault-count length of the HIR-channel outage square wave (0 = off).
    pub hir_outage_period: u64,
    /// Fraction of each outage period during which the channel is down.
    pub hir_outage_duty: f64,
    /// Probability that a serviced fault additionally delivers a spurious
    /// (corrupted) wrong-eviction report to the policy.
    pub spurious_wrong_eviction_probability: f64,
    /// Probability that a fault-service window delays (rather than drops)
    /// the policy's next HIR flush in transit — the partial-outage mode.
    pub hir_delay_probability: f64,
    /// Delivery delay of a delayed HIR flush, in serviced faults. The
    /// policy applies flushes within its staleness bound and discards
    /// staler ones.
    pub hir_delay_faults: u64,
    /// Probability that one victim response from the policy is corrupted
    /// in transit: the engine discards the answer and evicts via its
    /// fallback victim instead.
    pub victim_drop_probability: f64,
    /// Deterministic fault windows on the cycle axis. Inside a window the
    /// family's effect fires unconditionally (no RNG draw), so window
    /// placements can be enumerated exhaustively. Windows of the *same*
    /// family must not overlap ([`Self::validate`] rejects them — they
    /// would silently compound); windows of different families may.
    pub windows: Vec<FaultWindow>,
}

impl_json_struct!(FaultPlan {
    seed = 0,
    latency_jitter = 0.0,
    tail_probability = 0.0,
    tail_multiplier = 1,
    congestion_period = 0,
    congestion_duty = 0.0,
    congestion_factor = 1,
    completion_loss_probability = 0.0,
    retry_cycles = 0,
    max_completion_retries = None,
    hir_outage_period = 0,
    hir_outage_duty = 0.0,
    spurious_wrong_eviction_probability = 0.0,
    hir_delay_probability = 0.0,
    hir_delay_faults = 0,
    victim_drop_probability = 0.0,
    windows = Vec::new(),
});

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The inert plan: no perturbation, no RNG draws.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            latency_jitter: 0.0,
            tail_probability: 0.0,
            tail_multiplier: 1,
            congestion_period: 0,
            congestion_duty: 0.0,
            congestion_factor: 1,
            completion_loss_probability: 0.0,
            retry_cycles: 0,
            max_completion_retries: None,
            hir_outage_period: 0,
            hir_outage_duty: 0.0,
            spurious_wrong_eviction_probability: 0.0,
            hir_delay_probability: 0.0,
            hir_delay_faults: 0,
            victim_drop_probability: 0.0,
            windows: Vec::new(),
        }
    }

    /// The strict-parsing template: the inert plan with one exemplar
    /// window, so [`FaultPlan::from_json_strict`] knows the full field
    /// set including the nested window shape.
    pub fn template() -> Self {
        let mut plan = Self::none();
        plan.windows.push(FaultWindow {
            family: FaultFamily::Congestion,
            start: 0,
            width: 0,
        });
        plan
    }

    /// Parses a plan document, rejecting unknown fields with an
    /// actionable message instead of silently defaulting a misspelled
    /// knob (see [`uvm_util::check_unknown_fields`]).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on unknown or malformed fields.
    pub fn from_json_strict(v: &Json) -> Result<Self, JsonError> {
        check_unknown_fields(v, &Self::template().to_json(), "fault plan")?;
        Self::from_json(v)
    }

    /// Latency chaos: ±25% service jitter with a 1-in-50 8x tail.
    pub fn latency_storm(seed: u64) -> Self {
        FaultPlan {
            seed,
            latency_jitter: 0.25,
            tail_probability: 0.02,
            tail_multiplier: 8,
            ..Self::none()
        }
    }

    /// Interconnect congestion: half of every 2M-cycle window multiplies
    /// transfer time by 8.
    pub fn congestion(seed: u64) -> Self {
        FaultPlan {
            seed,
            congestion_period: 2_000_000,
            congestion_duty: 0.5,
            congestion_factor: 8,
            ..Self::none()
        }
    }

    /// Lossy completion channel: 5% of completions need a 10k-cycle retry,
    /// at most 3 in a row, so the driver always makes progress eventually.
    pub fn completion_loss(seed: u64) -> Self {
        FaultPlan {
            seed,
            completion_loss_probability: 0.05,
            retry_cycles: 10_000,
            max_completion_retries: Some(3),
            ..Self::none()
        }
    }

    /// Driver-signal chaos: the HIR channel is down for 40% of every
    /// 512-fault window and 2% of serviced faults deliver a spurious
    /// wrong-eviction report. Exercises HPE's degraded fallback.
    pub fn signal_chaos(seed: u64) -> Self {
        FaultPlan {
            seed,
            hir_outage_period: 512,
            hir_outage_duty: 0.4,
            spurious_wrong_eviction_probability: 0.02,
            ..Self::none()
        }
    }

    /// Partial outage: a quarter of fault-service windows delay the next
    /// HIR flush by 24 faults in transit. With HPE's default staleness
    /// bound (two transfer intervals = 32 faults) delayed flushes still
    /// apply — late, but not dropped.
    pub fn partial_outage(seed: u64) -> Self {
        FaultPlan {
            seed,
            hir_delay_probability: 0.25,
            hir_delay_faults: 24,
            ..Self::none()
        }
    }

    /// Corrupted victim responses: 5% of the policy's eviction answers
    /// are dropped in transit, forcing the engine onto its fallback
    /// victim (min-page or the LRU shadow).
    pub fn victim_drop(seed: u64) -> Self {
        FaultPlan {
            seed,
            victim_drop_probability: 0.05,
            ..Self::none()
        }
    }

    /// An injected livelock: every completion is lost and never retried
    /// successfully. The watchdog must report `SimError::Stalled`.
    pub fn livelock(seed: u64) -> Self {
        FaultPlan {
            seed,
            completion_loss_probability: 1.0,
            retry_cycles: 10_000,
            max_completion_retries: None,
            ..Self::none()
        }
    }

    /// Whether this plan perturbs nothing (equivalent to [`Self::none`]
    /// modulo the seed).
    pub fn is_noop(&self) -> bool {
        self.latency_jitter == 0.0
            && self.tail_probability == 0.0
            && self.congestion_period == 0
            && self.completion_loss_probability == 0.0
            && self.hir_outage_period == 0
            && self.spurious_wrong_eviction_probability == 0.0
            && self.hir_delay_probability == 0.0
            && self.victim_drop_probability == 0.0
            && self.windows.is_empty()
    }

    /// Whether any window of `family` is configured.
    pub fn has_window(&self, family: FaultFamily) -> bool {
        self.windows.iter().any(|w| w.family == family)
    }

    /// Whether `cycle` falls inside a window of `family`.
    pub fn in_family_window(&self, family: FaultFamily, cycle: u64) -> bool {
        self.windows
            .iter()
            .any(|w| w.family == family && w.contains(cycle))
    }

    /// Whether the HIR channel is injected-down at fault number
    /// `fault_num` and cycle `now` (square wave OR any
    /// [`FaultFamily::HirOutage`] window).
    pub fn hir_down_at(&self, fault_num: u64, now: u64) -> bool {
        in_window(fault_num, self.hir_outage_period, self.hir_outage_duty)
            || self.in_family_window(FaultFamily::HirOutage, now)
    }

    /// Validates the plan.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] naming the first offending knob.
    pub fn validate(&self) -> Result<(), ConfigError> {
        fn probability(name: &'static str, p: f64) -> Result<(), ConfigError> {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(ConfigError::invalid(name, "must be a fraction in [0, 1]"));
            }
            Ok(())
        }
        if !self.latency_jitter.is_finite() || !(0.0..1.0).contains(&self.latency_jitter) {
            return Err(ConfigError::invalid(
                "latency_jitter",
                "must be a fraction in [0, 1)",
            ));
        }
        probability("tail_probability", self.tail_probability)?;
        probability("congestion_duty", self.congestion_duty)?;
        probability(
            "completion_loss_probability",
            self.completion_loss_probability,
        )?;
        probability("hir_outage_duty", self.hir_outage_duty)?;
        probability(
            "spurious_wrong_eviction_probability",
            self.spurious_wrong_eviction_probability,
        )?;
        probability("hir_delay_probability", self.hir_delay_probability)?;
        probability("victim_drop_probability", self.victim_drop_probability)?;
        if self.tail_probability > 0.0 && self.tail_multiplier < 2 {
            return Err(ConfigError::invalid(
                "tail_multiplier",
                "must be at least 2 when tail_probability is nonzero",
            ));
        }
        if self.congestion_period > 0 && self.congestion_factor < 2 {
            return Err(ConfigError::invalid(
                "congestion_factor",
                "must be at least 2 when congestion is enabled",
            ));
        }
        if self.completion_loss_probability > 0.0 && self.retry_cycles == 0 {
            return Err(ConfigError::invalid(
                "retry_cycles",
                "must be nonzero when completions can be lost",
            ));
        }
        if self.congestion_period > 0
            && (self.congestion_period as f64 * self.congestion_duty) < 1.0
        {
            return Err(ConfigError::invalid(
                "congestion_duty",
                "congested window rounds to zero cycles; raise congestion_duty \
                 (or congestion_period) so period * duty is at least 1, or set \
                 congestion_period to 0 to disable congestion",
            ));
        }
        if self.hir_outage_period > 0
            && (self.hir_outage_period as f64 * self.hir_outage_duty) < 1.0
        {
            return Err(ConfigError::invalid(
                "hir_outage_duty",
                "outage window rounds to zero faults; raise hir_outage_duty \
                 (or hir_outage_period) so period * duty is at least 1, or set \
                 hir_outage_period to 0 to disable outages",
            ));
        }
        if self.hir_delay_probability > 0.0 && self.hir_delay_faults == 0 {
            return Err(ConfigError::invalid(
                "hir_delay_faults",
                "must be nonzero when hir_delay_probability is nonzero (a \
                 zero-fault delay would be indistinguishable from no delay)",
            ));
        }
        self.validate_windows()
    }

    /// Window-specific validation: nonzero widths, knobs the windowed
    /// effect depends on, and no same-family overlap.
    fn validate_windows(&self) -> Result<(), ConfigError> {
        for (i, w) in self.windows.iter().enumerate() {
            if w.width == 0 {
                return Err(ConfigError::invalid(
                    "windows",
                    format!(
                        "window {i} ({}) has zero width; a window must cover at \
                         least one cycle or be removed",
                        w.family.label()
                    ),
                ));
            }
        }
        if self.has_window(FaultFamily::Congestion) && self.congestion_factor < 2 {
            return Err(ConfigError::invalid(
                "congestion_factor",
                "must be at least 2 when a congestion window is configured",
            ));
        }
        if self.has_window(FaultFamily::LatencyTail) && self.tail_multiplier < 2 {
            return Err(ConfigError::invalid(
                "tail_multiplier",
                "must be at least 2 when a latency-tail window is configured",
            ));
        }
        if self.has_window(FaultFamily::CompletionLoss) && self.retry_cycles == 0 {
            return Err(ConfigError::invalid(
                "retry_cycles",
                "must be nonzero when a completion-loss window is configured \
                 (lost completions are re-queued after retry_cycles)",
            ));
        }
        if self.has_window(FaultFamily::FlushDelay) && self.hir_delay_faults == 0 {
            return Err(ConfigError::invalid(
                "hir_delay_faults",
                "must be nonzero when a flush-delay window is configured",
            ));
        }
        // Same-family windows must not overlap: inside an overlap the
        // effect would silently compound (e.g. congestion applied twice),
        // which makes exhaustive enumeration and shrinking unsound.
        // Touching windows (end == start) are fine.
        for family in FaultFamily::ALL {
            let mut spans: Vec<(usize, &FaultWindow)> = self
                .windows
                .iter()
                .enumerate()
                .filter(|(_, w)| w.family == family)
                .collect();
            spans.sort_by_key(|(_, w)| (w.start, w.width));
            for pair in spans.windows(2) {
                let (i, a) = pair[0];
                let (j, b) = pair[1];
                if a.end() > b.start {
                    return Err(ConfigError::invalid(
                        "windows",
                        format!(
                            "windows {i} and {j} of family {} overlap \
                             ([{}, {}) vs [{}, {})): their effects would \
                             silently compound; merge them into one window \
                             or separate their cycle ranges",
                            family.label(),
                            a.start,
                            a.end(),
                            b.start,
                            b.end()
                        ),
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Whether position `at` of a square wave with `period` and `duty` is in
/// the active (perturbed) part of the wave.
fn in_window(at: u64, period: u64, duty: f64) -> bool {
    if period == 0 {
        return false;
    }
    let active = (period as f64 * duty) as u64;
    (at % period) < active
}

/// Runtime state of an active fault plan (one per simulation).
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    rng: Rng,
    /// Consecutive completion losses for the in-service fault.
    lost_in_row: u32,
    /// Mirror of the injected HIR-channel state the policy was last told.
    pub(crate) hir_down: bool,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        let rng = Rng::seed_from_u64(plan.seed);
        FaultState {
            plan,
            rng,
            lost_in_row: 0,
            hir_down: false,
        }
    }

    /// Perturbs one fault service: returns the adjusted `(service,
    /// transfer)` cycle counts and records what was injected.
    pub(crate) fn perturb_service(
        &mut self,
        base_service: u64,
        transfer: u64,
        now: u64,
        res: &mut ResilienceStats,
    ) -> (u64, u64) {
        let mut service = base_service;
        let mut out_transfer = transfer;
        if self.plan.latency_jitter > 0.0 {
            // Uniform in [1 - j, 1 + j); drawn even when the fault carries
            // no transfer so the stream depends only on the fault sequence.
            let f = 2.0 * self.rng.gen_f64() - 1.0;
            let scaled = base_service as f64 * (1.0 + f * self.plan.latency_jitter);
            service = scaled.max(1.0) as u64;
        }
        if self.plan.tail_probability > 0.0 && self.rng.gen_bool(self.plan.tail_probability) {
            service = service.saturating_mul(self.plan.tail_multiplier);
            res.tail_latency_events += 1;
        } else if self.plan.in_family_window(FaultFamily::LatencyTail, now) {
            // Deterministic tail window: fires unconditionally, but never
            // stacks on top of a probabilistic tail already drawn.
            service = service.saturating_mul(self.plan.tail_multiplier);
            res.tail_latency_events += 1;
        }
        if in_window(now, self.plan.congestion_period, self.plan.congestion_duty)
            || self.plan.in_family_window(FaultFamily::Congestion, now)
        {
            out_transfer = out_transfer.saturating_mul(self.plan.congestion_factor);
            res.congested_services += 1;
        }
        let clean = base_service + transfer;
        let injected = (service + out_transfer).saturating_sub(clean);
        res.injected_delay_cycles += injected;
        (service, out_transfer)
    }

    /// Steps the HIR-outage state at fault number `fault_count` and cycle
    /// `now` (square wave OR outage window); returns `Some(down)` when
    /// the channel state just changed.
    pub(crate) fn hir_transition(&mut self, fault_count: u64, now: u64) -> Option<bool> {
        let down = self.plan.hir_down_at(fault_count, now);
        if down == self.hir_down {
            return None;
        }
        self.hir_down = down;
        Some(down)
    }

    /// Whether this serviced fault also delivers a spurious wrong-eviction
    /// report.
    pub(crate) fn spurious_wrong_eviction(&mut self, now: u64, res: &mut ResilienceStats) -> bool {
        if self.plan.in_family_window(FaultFamily::SpuriousSignal, now) {
            res.spurious_wrong_evictions += 1;
            return true;
        }
        let p = self.plan.spurious_wrong_eviction_probability;
        if p > 0.0 && self.rng.gen_bool(p) {
            res.spurious_wrong_evictions += 1;
            return true;
        }
        false
    }

    /// Whether this fault-service window delays the policy's next HIR
    /// flush in transit (partial outage); returns the delay in faults.
    pub(crate) fn flush_delay(&mut self, now: u64, res: &mut ResilienceStats) -> Option<u64> {
        if self.plan.in_family_window(FaultFamily::FlushDelay, now) {
            res.delayed_hir_flushes += 1;
            return Some(self.plan.hir_delay_faults);
        }
        let p = self.plan.hir_delay_probability;
        if p > 0.0 && self.rng.gen_bool(p) {
            res.delayed_hir_flushes += 1;
            return Some(self.plan.hir_delay_faults);
        }
        None
    }

    /// Whether one victim response from the policy is corrupted in
    /// transit, forcing the engine onto its fallback victim.
    pub(crate) fn victim_dropped(&mut self, now: u64, res: &mut ResilienceStats) -> bool {
        if self.plan.in_family_window(FaultFamily::VictimDrop, now) {
            res.victims_dropped += 1;
            return true;
        }
        let p = self.plan.victim_drop_probability;
        if p > 0.0 && self.rng.gen_bool(p) {
            res.victims_dropped += 1;
            return true;
        }
        false
    }

    /// Whether this plan can drop victim responses at all. When it can,
    /// the engine tolerates stale (non-resident) victim offers — an
    /// expected after-effect of a drop — instead of treating them as a
    /// policy bug.
    pub(crate) fn drops_victims(&self) -> bool {
        self.plan.victim_drop_probability > 0.0 || self.plan.has_window(FaultFamily::VictimDrop)
    }

    /// Checkpoint fingerprint: the RNG words and the loss streak. Both
    /// are replayed on resume; recording them lets the resumed run prove
    /// it reached the identical stream position.
    pub(crate) fn fingerprint(&self) -> ([u64; 4], u32) {
        (self.rng.state(), self.lost_in_row)
    }

    /// Decides the fate of a fault-completion signal at cycle `now`.
    /// Returns `Some(retry_delay)` when the signal was lost and the
    /// driver must retry after that many cycles; `None` delivers it.
    pub(crate) fn completion_lost(&mut self, now: u64, res: &mut ResilienceStats) -> Option<u64> {
        // A completion-loss window is absolute: every signal inside it is
        // lost (no RNG draw, `max_completion_retries` does not apply).
        // The driver escapes once its cumulative backoff carries the
        // retry past the window's end — or its retry policy gives up.
        if self.plan.in_family_window(FaultFamily::CompletionLoss, now) {
            res.completions_lost += 1;
            return Some(self.plan.retry_cycles);
        }
        let p = self.plan.completion_loss_probability;
        if p == 0.0 {
            return None;
        }
        if let Some(max) = self.plan.max_completion_retries {
            if self.lost_in_row >= max {
                self.lost_in_row = 0;
                return None;
            }
        }
        if self.rng.gen_bool(p) {
            self.lost_in_row += 1;
            res.completions_lost += 1;
            return Some(self.plan.retry_cycles);
        }
        self.lost_in_row = 0;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvm_util::{FromJson, ToJson};

    #[test]
    fn noop_plan_draws_nothing_and_changes_nothing() {
        let mut st = FaultState::new(FaultPlan::none());
        let mut res = ResilienceStats::default();
        for now in [0u64, 1_000, 2_000_000] {
            assert_eq!(
                st.perturb_service(28_000, 512, now, &mut res),
                (28_000, 512)
            );
            assert_eq!(st.hir_transition(now, now), None);
            assert!(!st.spurious_wrong_eviction(now, &mut res));
            assert_eq!(st.completion_lost(now, &mut res), None);
        }
        assert!(!res.any());
    }

    #[test]
    fn identical_seeds_perturb_identically() {
        let mut a = FaultState::new(FaultPlan::latency_storm(99));
        let mut b = FaultState::new(FaultPlan::latency_storm(99));
        let (mut ra, mut rb) = (ResilienceStats::default(), ResilienceStats::default());
        for i in 0..500u64 {
            assert_eq!(
                a.perturb_service(28_000, 64, i * 31, &mut ra),
                b.perturb_service(28_000, 64, i * 31, &mut rb),
            );
        }
        assert_eq!(ra, rb);
        assert!(ra.injected_delay_cycles > 0 || ra.tail_latency_events > 0);
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let mut st = FaultState::new(FaultPlan {
            seed: 5,
            latency_jitter: 0.25,
            ..FaultPlan::none()
        });
        let mut res = ResilienceStats::default();
        for i in 0..1_000u64 {
            let (service, transfer) = st.perturb_service(28_000, 0, i, &mut res);
            assert!((21_000..28_000 + 7_000).contains(&service), "{service}");
            assert_eq!(transfer, 0);
        }
    }

    #[test]
    fn congestion_multiplies_transfer_inside_window_only() {
        let mut st = FaultState::new(FaultPlan::congestion(1));
        let mut res = ResilienceStats::default();
        // Duty 0.5 over 2M cycles: the first 1M are congested.
        let (s, t) = st.perturb_service(28_000, 100, 0, &mut res);
        assert_eq!((s, t), (28_000, 800));
        let (s, t) = st.perturb_service(28_000, 100, 1_500_000, &mut res);
        assert_eq!((s, t), (28_000, 100));
        assert_eq!(res.congested_services, 1);
        assert_eq!(res.injected_delay_cycles, 700);
    }

    #[test]
    fn outage_wave_reports_transitions_once() {
        let mut st = FaultState::new(FaultPlan::signal_chaos(2));
        // Period 512, duty 0.4: faults 0..204 down, 205..511 up.
        assert_eq!(st.hir_transition(0, 0), Some(true));
        assert_eq!(st.hir_transition(100, 0), None);
        assert_eq!(st.hir_transition(204, 0), Some(false));
        assert_eq!(st.hir_transition(400, 0), None);
        assert_eq!(st.hir_transition(512, 0), Some(true));
    }

    #[test]
    fn bounded_completion_loss_always_delivers_eventually() {
        let mut st = FaultState::new(FaultPlan {
            seed: 3,
            completion_loss_probability: 1.0,
            retry_cycles: 10,
            max_completion_retries: Some(3),
            ..FaultPlan::none()
        });
        let mut res = ResilienceStats::default();
        let mut delivered = 0;
        let mut attempts = 0;
        while delivered < 5 {
            attempts += 1;
            if st.completion_lost(0, &mut res).is_none() {
                delivered += 1;
            }
            assert!(attempts <= 5 * 4, "must deliver every 4th attempt");
        }
        assert_eq!(res.completions_lost, 15);
    }

    #[test]
    fn unbounded_loss_never_delivers() {
        let mut st = FaultState::new(FaultPlan::livelock(4));
        let mut res = ResilienceStats::default();
        for _ in 0..100 {
            assert_eq!(st.completion_lost(0, &mut res), Some(10_000));
        }
        assert_eq!(res.completions_lost, 100);
    }

    #[test]
    fn presets_validate_and_none_is_noop() {
        for plan in [
            FaultPlan::none(),
            FaultPlan::latency_storm(1),
            FaultPlan::congestion(1),
            FaultPlan::completion_loss(1),
            FaultPlan::signal_chaos(1),
            FaultPlan::partial_outage(1),
            FaultPlan::victim_drop(1),
            FaultPlan::livelock(1),
        ] {
            plan.validate().unwrap();
        }
        assert!(FaultPlan::none().is_noop());
        assert!(!FaultPlan::signal_chaos(1).is_noop());
        assert!(!FaultPlan::partial_outage(1).is_noop());
        assert!(!FaultPlan::victim_drop(1).is_noop());
    }

    #[test]
    fn flush_delay_draws_only_when_enabled() {
        let mut st = FaultState::new(FaultPlan::none());
        let mut res = ResilienceStats::default();
        for _ in 0..100 {
            assert_eq!(st.flush_delay(0, &mut res), None);
        }
        assert!(!st.drops_victims());

        let mut st = FaultState::new(FaultPlan {
            seed: 7,
            hir_delay_probability: 1.0,
            hir_delay_faults: 24,
            ..FaultPlan::none()
        });
        for _ in 0..10 {
            assert_eq!(st.flush_delay(0, &mut res), Some(24));
        }
        assert_eq!(res.delayed_hir_flushes, 10);
    }

    #[test]
    fn victim_drops_are_counted_and_flagged() {
        let mut st = FaultState::new(FaultPlan::victim_drop(8));
        assert!(st.drops_victims());
        let mut res = ResilienceStats::default();
        let drops = (0..2_000)
            .filter(|_| st.victim_dropped(0, &mut res))
            .count() as u64;
        // 5% of 2000 draws: far from zero, far from certain.
        assert!(drops > 0, "p=0.05 over 2000 draws must drop something");
        assert!(drops < 500, "p=0.05 cannot drop a quarter of responses");
        assert_eq!(res.victims_dropped, drops);
    }

    #[test]
    fn validate_rejects_bad_knobs() {
        let mut p = FaultPlan::none();
        p.latency_jitter = 1.0;
        assert!(p.validate().is_err());

        let mut p = FaultPlan::none();
        p.tail_probability = 1.5;
        assert!(p.validate().is_err());

        let mut p = FaultPlan::none();
        p.tail_probability = 0.1;
        p.tail_multiplier = 1;
        assert!(p.validate().is_err());

        let mut p = FaultPlan::none();
        p.congestion_period = 100;
        p.congestion_factor = 1;
        assert!(p.validate().is_err());

        let mut p = FaultPlan::none();
        p.completion_loss_probability = 0.5;
        p.retry_cycles = 0;
        assert!(p.validate().is_err());

        let mut p = FaultPlan::none();
        p.hir_outage_duty = f64::NAN;
        assert!(p.validate().is_err());

        let mut p = FaultPlan::none();
        p.hir_delay_probability = 0.2;
        p.hir_delay_faults = 0;
        assert!(p.validate().is_err());

        let mut p = FaultPlan::none();
        p.victim_drop_probability = -0.1;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_width_windows_with_actionable_messages() {
        // A 1%-duty window over 50 cycles rounds to zero congested
        // cycles: the plan would look active but inject nothing.
        let mut p = FaultPlan::congestion(1);
        p.congestion_period = 50;
        p.congestion_duty = 0.01;
        let msg = p.validate().unwrap_err().to_string();
        assert!(msg.contains("congestion_duty"), "{msg}");
        assert!(msg.contains("rounds to zero"), "{msg}");

        let mut p = FaultPlan::signal_chaos(1);
        p.hir_outage_period = 2;
        p.hir_outage_duty = 0.1;
        let msg = p.validate().unwrap_err().to_string();
        assert!(msg.contains("hir_outage_duty"), "{msg}");
        assert!(msg.contains("rounds to zero"), "{msg}");
    }

    fn window(family: FaultFamily, start: u64, width: u64) -> FaultWindow {
        FaultWindow {
            family,
            start,
            width,
        }
    }

    #[test]
    fn family_labels_roundtrip() {
        for f in FaultFamily::ALL {
            assert_eq!(FaultFamily::parse(f.label()), Some(f));
        }
        assert_eq!(FaultFamily::parse("nope"), None);
    }

    #[test]
    fn windowed_effects_fire_inside_window_only_without_rng_draws() {
        let plan = FaultPlan {
            tail_multiplier: 4,
            congestion_factor: 8,
            retry_cycles: 500,
            hir_delay_faults: 24,
            windows: vec![
                window(FaultFamily::Congestion, 1_000, 100),
                window(FaultFamily::LatencyTail, 2_000, 100),
                window(FaultFamily::CompletionLoss, 3_000, 100),
                window(FaultFamily::SpuriousSignal, 4_000, 100),
                window(FaultFamily::FlushDelay, 5_000, 100),
                window(FaultFamily::VictimDrop, 6_000, 100),
                window(FaultFamily::HirOutage, 7_000, 100),
            ],
            ..FaultPlan::none()
        };
        plan.validate().unwrap();
        assert!(!plan.is_noop());
        let mut st = FaultState::new(plan);
        assert!(st.drops_victims());
        let mut res = ResilienceStats::default();

        // Congestion: transfer x8 inside [1000, 1100), untouched outside.
        assert_eq!(st.perturb_service(100, 10, 1_050, &mut res), (100, 80));
        assert_eq!(st.perturb_service(100, 10, 1_100, &mut res), (100, 10));
        // Latency tail: service x4 inside [2000, 2100).
        assert_eq!(st.perturb_service(100, 10, 2_000, &mut res), (400, 10));
        // Completion loss: absolute inside the window.
        assert_eq!(st.completion_lost(3_050, &mut res), Some(500));
        assert_eq!(st.completion_lost(3_100, &mut res), None);
        // Spurious signal / flush delay / victim drop.
        assert!(st.spurious_wrong_eviction(4_000, &mut res));
        assert!(!st.spurious_wrong_eviction(4_100, &mut res));
        assert_eq!(st.flush_delay(5_099, &mut res), Some(24));
        assert_eq!(st.flush_delay(5_100, &mut res), None);
        assert!(st.victim_dropped(6_000, &mut res));
        assert!(!st.victim_dropped(6_100, &mut res));
        // HIR outage window flips the channel on the cycle axis.
        assert_eq!(st.hir_transition(0, 7_000), Some(true));
        assert_eq!(st.hir_transition(0, 7_099), None);
        assert_eq!(st.hir_transition(0, 7_100), Some(false));

        // Deterministic windows draw nothing: the RNG stream is untouched,
        // so a replay perturbs identically.
        let (rng_state, _) = st.fingerprint();
        assert_eq!(rng_state, Rng::seed_from_u64(0).state());
        assert_eq!(res.completions_lost, 1);
        assert_eq!(res.congested_services, 1);
        assert_eq!(res.tail_latency_events, 1);
        assert_eq!(res.spurious_wrong_evictions, 1);
        assert_eq!(res.delayed_hir_flushes, 1);
        assert_eq!(res.victims_dropped, 1);
    }

    #[test]
    fn validate_rejects_overlapping_same_family_windows() {
        // Plain overlap.
        let mut p = FaultPlan::none();
        p.congestion_factor = 4;
        p.windows = vec![
            window(FaultFamily::Congestion, 100, 50),
            window(FaultFamily::Congestion, 120, 50),
        ];
        let msg = p.validate().unwrap_err().to_string();
        assert!(msg.contains("overlap"), "{msg}");
        assert!(msg.contains("congestion"), "{msg}");
        assert!(msg.contains("windows 0 and 1"), "{msg}");
        assert!(msg.contains("[100, 150)"), "{msg}");

        // One-cycle overlap at the boundary (end > start by exactly 1).
        p.windows = vec![
            window(FaultFamily::Congestion, 100, 51),
            window(FaultFamily::Congestion, 150, 10),
        ];
        assert!(p.validate().is_err(), "end 151 > start 150 must overlap");

        // Touching windows (end == start) are legal.
        p.windows = vec![
            window(FaultFamily::Congestion, 100, 50),
            window(FaultFamily::Congestion, 150, 10),
        ];
        p.validate().unwrap();

        // Identical spans of the same family overlap.
        p.windows = vec![
            window(FaultFamily::Congestion, 100, 50),
            window(FaultFamily::Congestion, 100, 50),
        ];
        assert!(p.validate().is_err(), "identical windows must be rejected");

        // A window nested inside another overlaps even though it starts
        // later and ends earlier.
        p.windows = vec![
            window(FaultFamily::Congestion, 100, 100),
            window(FaultFamily::Congestion, 130, 10),
        ];
        assert!(p.validate().is_err(), "nested windows must be rejected");

        // Unsorted declaration order is still caught (validation sorts).
        p.windows = vec![
            window(FaultFamily::Congestion, 120, 50),
            window(FaultFamily::Congestion, 100, 50),
        ];
        assert!(p.validate().is_err(), "overlap found regardless of order");

        // Same spans across *different* families are legal.
        p.retry_cycles = 500;
        p.windows = vec![
            window(FaultFamily::Congestion, 100, 50),
            window(FaultFamily::CompletionLoss, 100, 50),
        ];
        p.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_window_knob_couplings() {
        let mut p = FaultPlan::none();
        p.windows = vec![window(FaultFamily::Congestion, 0, 0)];
        let msg = p.validate().unwrap_err().to_string();
        assert!(msg.contains("zero width"), "{msg}");

        let mut p = FaultPlan::none();
        p.windows = vec![window(FaultFamily::Congestion, 0, 10)];
        assert!(p.validate().is_err(), "factor 1 congestion window");

        let mut p = FaultPlan::none();
        p.windows = vec![window(FaultFamily::LatencyTail, 0, 10)];
        assert!(p.validate().is_err(), "multiplier 1 tail window");

        let mut p = FaultPlan::none();
        p.windows = vec![window(FaultFamily::CompletionLoss, 0, 10)];
        let msg = p.validate().unwrap_err().to_string();
        assert!(msg.contains("retry_cycles"), "{msg}");

        let mut p = FaultPlan::none();
        p.windows = vec![window(FaultFamily::FlushDelay, 0, 10)];
        let msg = p.validate().unwrap_err().to_string();
        assert!(msg.contains("hir_delay_faults"), "{msg}");
    }

    #[test]
    fn windowed_plan_json_roundtrip() {
        let plan = FaultPlan {
            retry_cycles: 500,
            windows: vec![
                window(FaultFamily::CompletionLoss, 1_000_000, 400_000),
                window(FaultFamily::HirOutage, 0, 65_536),
            ],
            ..FaultPlan::none()
        };
        let text = plan.to_json().to_string();
        let back = FaultPlan::from_json(&uvm_util::Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.to_json().to_string(), text);
    }

    #[test]
    fn json_roundtrip_and_sparse_defaults() {
        let plan = FaultPlan::completion_loss(42);
        let back = FaultPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(back, plan);

        let sparse = uvm_util::Json::parse(r#"{"seed": 9, "latency_jitter": 0.1}"#).unwrap();
        let p = FaultPlan::from_json(&sparse).unwrap();
        assert_eq!(p.seed, 9);
        assert!((p.latency_jitter - 0.1).abs() < 1e-12);
        assert_eq!(p.congestion_period, 0);
        assert_eq!(p.max_completion_retries, None);
    }

    #[test]
    fn strict_parse_flags_unknown_and_misspelled_fields() {
        // Top-level misspelling gets a suggestion.
        let v = uvm_util::Json::parse(r#"{"seeed": 9}"#).unwrap();
        let err = FaultPlan::from_json_strict(&v).unwrap_err().to_string();
        assert!(err.contains("seeed"), "{err}");
        assert!(err.contains("seed"), "{err}");
        // Misspellings inside window entries name the exact element.
        let v = uvm_util::Json::parse(
            r#"{"windows": [{"family": "Congestion", "start": 0, "widht": 5}]}"#,
        )
        .unwrap();
        let err = FaultPlan::from_json_strict(&v).unwrap_err().to_string();
        assert!(err.contains("windows[0].widht"), "{err}");
        assert!(err.contains("width"), "{err}");
        // Valid sparse input still parses.
        let v = uvm_util::Json::parse(r#"{"seed": 9}"#).unwrap();
        assert_eq!(FaultPlan::from_json_strict(&v).unwrap().seed, 9);
    }
}
