//! Seeded fault injection for chaos campaigns.
//!
//! A [`FaultPlan`] describes a replayable set of perturbations applied to
//! the engine while it runs: jittered and tail fault-service latency,
//! interconnect congestion windows that inflate transfer time, lost
//! fault-completion signals (retried by the driver, or never delivered —
//! a livelock the watchdog converts into [`uvm_types::SimError::Stalled`]),
//! GPU→driver HIR-channel outages, and spurious wrong-eviction reports.
//!
//! All randomness comes from one xoshiro256** stream seeded by
//! [`FaultPlan::seed`], and every draw is gated on its knob being enabled,
//! so two runs with the same plan perturb identically and
//! [`FaultPlan::none`] leaves the simulation byte-identical to an
//! uninstrumented run.
//!
//! # Examples
//!
//! ```
//! use uvm_sim::FaultPlan;
//!
//! let plan = FaultPlan::latency_storm(7);
//! plan.validate().unwrap();
//! assert!(!plan.is_noop());
//! assert!(FaultPlan::none().is_noop());
//! ```

use uvm_types::{ConfigError, ResilienceStats};
use uvm_util::{impl_json_struct, Rng};

/// A replayable fault-injection plan (all perturbations off by default).
///
/// Fields with probability semantics are fractions in `[0, 1]`; periods
/// of `0` disable their perturbation entirely.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the injection RNG stream.
    pub seed: u64,
    /// Uniform ±fraction applied to the base fault-service latency
    /// (e.g. `0.25` draws from `[0.75x, 1.25x]`). Must be in `[0, 1)`.
    pub latency_jitter: f64,
    /// Probability that one fault service lands in the latency tail.
    pub tail_probability: f64,
    /// Multiplier applied to the whole service time on a tail event.
    pub tail_multiplier: u64,
    /// Cycle length of the interconnect congestion square wave (0 = off).
    pub congestion_period: u64,
    /// Fraction of each congestion period that is congested.
    pub congestion_duty: f64,
    /// Multiplier on HIR-flush transfer cycles inside a congested window.
    pub congestion_factor: u64,
    /// Probability that a fault-completion signal is lost in transit and
    /// must be retried by the driver.
    pub completion_loss_probability: f64,
    /// Cycles between completion retries.
    pub retry_cycles: u64,
    /// Consecutive losses after which the completion finally gets
    /// through. `None` retries forever: an injected livelock that the
    /// forward-progress watchdog must convert into a typed error.
    pub max_completion_retries: Option<u32>,
    /// Fault-count length of the HIR-channel outage square wave (0 = off).
    pub hir_outage_period: u64,
    /// Fraction of each outage period during which the channel is down.
    pub hir_outage_duty: f64,
    /// Probability that a serviced fault additionally delivers a spurious
    /// (corrupted) wrong-eviction report to the policy.
    pub spurious_wrong_eviction_probability: f64,
    /// Probability that a fault-service window delays (rather than drops)
    /// the policy's next HIR flush in transit — the partial-outage mode.
    pub hir_delay_probability: f64,
    /// Delivery delay of a delayed HIR flush, in serviced faults. The
    /// policy applies flushes within its staleness bound and discards
    /// staler ones.
    pub hir_delay_faults: u64,
    /// Probability that one victim response from the policy is corrupted
    /// in transit: the engine discards the answer and evicts via its
    /// fallback victim instead.
    pub victim_drop_probability: f64,
}

impl_json_struct!(FaultPlan {
    seed = 0,
    latency_jitter = 0.0,
    tail_probability = 0.0,
    tail_multiplier = 1,
    congestion_period = 0,
    congestion_duty = 0.0,
    congestion_factor = 1,
    completion_loss_probability = 0.0,
    retry_cycles = 0,
    max_completion_retries = None,
    hir_outage_period = 0,
    hir_outage_duty = 0.0,
    spurious_wrong_eviction_probability = 0.0,
    hir_delay_probability = 0.0,
    hir_delay_faults = 0,
    victim_drop_probability = 0.0,
});

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The inert plan: no perturbation, no RNG draws.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            latency_jitter: 0.0,
            tail_probability: 0.0,
            tail_multiplier: 1,
            congestion_period: 0,
            congestion_duty: 0.0,
            congestion_factor: 1,
            completion_loss_probability: 0.0,
            retry_cycles: 0,
            max_completion_retries: None,
            hir_outage_period: 0,
            hir_outage_duty: 0.0,
            spurious_wrong_eviction_probability: 0.0,
            hir_delay_probability: 0.0,
            hir_delay_faults: 0,
            victim_drop_probability: 0.0,
        }
    }

    /// Latency chaos: ±25% service jitter with a 1-in-50 8x tail.
    pub fn latency_storm(seed: u64) -> Self {
        FaultPlan {
            seed,
            latency_jitter: 0.25,
            tail_probability: 0.02,
            tail_multiplier: 8,
            ..Self::none()
        }
    }

    /// Interconnect congestion: half of every 2M-cycle window multiplies
    /// transfer time by 8.
    pub fn congestion(seed: u64) -> Self {
        FaultPlan {
            seed,
            congestion_period: 2_000_000,
            congestion_duty: 0.5,
            congestion_factor: 8,
            ..Self::none()
        }
    }

    /// Lossy completion channel: 5% of completions need a 10k-cycle retry,
    /// at most 3 in a row, so the driver always makes progress eventually.
    pub fn completion_loss(seed: u64) -> Self {
        FaultPlan {
            seed,
            completion_loss_probability: 0.05,
            retry_cycles: 10_000,
            max_completion_retries: Some(3),
            ..Self::none()
        }
    }

    /// Driver-signal chaos: the HIR channel is down for 40% of every
    /// 512-fault window and 2% of serviced faults deliver a spurious
    /// wrong-eviction report. Exercises HPE's degraded fallback.
    pub fn signal_chaos(seed: u64) -> Self {
        FaultPlan {
            seed,
            hir_outage_period: 512,
            hir_outage_duty: 0.4,
            spurious_wrong_eviction_probability: 0.02,
            ..Self::none()
        }
    }

    /// Partial outage: a quarter of fault-service windows delay the next
    /// HIR flush by 24 faults in transit. With HPE's default staleness
    /// bound (two transfer intervals = 32 faults) delayed flushes still
    /// apply — late, but not dropped.
    pub fn partial_outage(seed: u64) -> Self {
        FaultPlan {
            seed,
            hir_delay_probability: 0.25,
            hir_delay_faults: 24,
            ..Self::none()
        }
    }

    /// Corrupted victim responses: 5% of the policy's eviction answers
    /// are dropped in transit, forcing the engine onto its fallback
    /// victim (min-page or the LRU shadow).
    pub fn victim_drop(seed: u64) -> Self {
        FaultPlan {
            seed,
            victim_drop_probability: 0.05,
            ..Self::none()
        }
    }

    /// An injected livelock: every completion is lost and never retried
    /// successfully. The watchdog must report `SimError::Stalled`.
    pub fn livelock(seed: u64) -> Self {
        FaultPlan {
            seed,
            completion_loss_probability: 1.0,
            retry_cycles: 10_000,
            max_completion_retries: None,
            ..Self::none()
        }
    }

    /// Whether this plan perturbs nothing (equivalent to [`Self::none`]
    /// modulo the seed).
    pub fn is_noop(&self) -> bool {
        self.latency_jitter == 0.0
            && self.tail_probability == 0.0
            && self.congestion_period == 0
            && self.completion_loss_probability == 0.0
            && self.hir_outage_period == 0
            && self.spurious_wrong_eviction_probability == 0.0
            && self.hir_delay_probability == 0.0
            && self.victim_drop_probability == 0.0
    }

    /// Validates the plan.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] naming the first offending knob.
    pub fn validate(&self) -> Result<(), ConfigError> {
        fn probability(name: &'static str, p: f64) -> Result<(), ConfigError> {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(ConfigError::invalid(name, "must be a fraction in [0, 1]"));
            }
            Ok(())
        }
        if !self.latency_jitter.is_finite() || !(0.0..1.0).contains(&self.latency_jitter) {
            return Err(ConfigError::invalid(
                "latency_jitter",
                "must be a fraction in [0, 1)",
            ));
        }
        probability("tail_probability", self.tail_probability)?;
        probability("congestion_duty", self.congestion_duty)?;
        probability(
            "completion_loss_probability",
            self.completion_loss_probability,
        )?;
        probability("hir_outage_duty", self.hir_outage_duty)?;
        probability(
            "spurious_wrong_eviction_probability",
            self.spurious_wrong_eviction_probability,
        )?;
        probability("hir_delay_probability", self.hir_delay_probability)?;
        probability("victim_drop_probability", self.victim_drop_probability)?;
        if self.tail_probability > 0.0 && self.tail_multiplier < 2 {
            return Err(ConfigError::invalid(
                "tail_multiplier",
                "must be at least 2 when tail_probability is nonzero",
            ));
        }
        if self.congestion_period > 0 && self.congestion_factor < 2 {
            return Err(ConfigError::invalid(
                "congestion_factor",
                "must be at least 2 when congestion is enabled",
            ));
        }
        if self.completion_loss_probability > 0.0 && self.retry_cycles == 0 {
            return Err(ConfigError::invalid(
                "retry_cycles",
                "must be nonzero when completions can be lost",
            ));
        }
        if self.congestion_period > 0
            && (self.congestion_period as f64 * self.congestion_duty) < 1.0
        {
            return Err(ConfigError::invalid(
                "congestion_duty",
                "congested window rounds to zero cycles; raise congestion_duty \
                 (or congestion_period) so period * duty is at least 1, or set \
                 congestion_period to 0 to disable congestion",
            ));
        }
        if self.hir_outage_period > 0
            && (self.hir_outage_period as f64 * self.hir_outage_duty) < 1.0
        {
            return Err(ConfigError::invalid(
                "hir_outage_duty",
                "outage window rounds to zero faults; raise hir_outage_duty \
                 (or hir_outage_period) so period * duty is at least 1, or set \
                 hir_outage_period to 0 to disable outages",
            ));
        }
        if self.hir_delay_probability > 0.0 && self.hir_delay_faults == 0 {
            return Err(ConfigError::invalid(
                "hir_delay_faults",
                "must be nonzero when hir_delay_probability is nonzero (a \
                 zero-fault delay would be indistinguishable from no delay)",
            ));
        }
        Ok(())
    }
}

/// Whether position `at` of a square wave with `period` and `duty` is in
/// the active (perturbed) part of the wave.
fn in_window(at: u64, period: u64, duty: f64) -> bool {
    if period == 0 {
        return false;
    }
    let active = (period as f64 * duty) as u64;
    (at % period) < active
}

/// Runtime state of an active fault plan (one per simulation).
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    rng: Rng,
    /// Consecutive completion losses for the in-service fault.
    lost_in_row: u32,
    /// Mirror of the injected HIR-channel state the policy was last told.
    pub(crate) hir_down: bool,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        let rng = Rng::seed_from_u64(plan.seed);
        FaultState {
            plan,
            rng,
            lost_in_row: 0,
            hir_down: false,
        }
    }

    /// Perturbs one fault service: returns the adjusted `(service,
    /// transfer)` cycle counts and records what was injected.
    pub(crate) fn perturb_service(
        &mut self,
        base_service: u64,
        transfer: u64,
        now: u64,
        res: &mut ResilienceStats,
    ) -> (u64, u64) {
        let mut service = base_service;
        let mut out_transfer = transfer;
        if self.plan.latency_jitter > 0.0 {
            // Uniform in [1 - j, 1 + j); drawn even when the fault carries
            // no transfer so the stream depends only on the fault sequence.
            let f = 2.0 * self.rng.gen_f64() - 1.0;
            let scaled = base_service as f64 * (1.0 + f * self.plan.latency_jitter);
            service = scaled.max(1.0) as u64;
        }
        if self.plan.tail_probability > 0.0 && self.rng.gen_bool(self.plan.tail_probability) {
            service = service.saturating_mul(self.plan.tail_multiplier);
            res.tail_latency_events += 1;
        }
        if in_window(now, self.plan.congestion_period, self.plan.congestion_duty) {
            out_transfer = out_transfer.saturating_mul(self.plan.congestion_factor);
            res.congested_services += 1;
        }
        let clean = base_service + transfer;
        let injected = (service + out_transfer).saturating_sub(clean);
        res.injected_delay_cycles += injected;
        (service, out_transfer)
    }

    /// Steps the HIR-outage square wave at fault number `fault_count`;
    /// returns `Some(down)` when the channel state just changed.
    pub(crate) fn hir_transition(&mut self, fault_count: u64) -> Option<bool> {
        let down = in_window(
            fault_count,
            self.plan.hir_outage_period,
            self.plan.hir_outage_duty,
        );
        if down == self.hir_down {
            return None;
        }
        self.hir_down = down;
        Some(down)
    }

    /// Whether this serviced fault also delivers a spurious wrong-eviction
    /// report.
    pub(crate) fn spurious_wrong_eviction(&mut self, res: &mut ResilienceStats) -> bool {
        let p = self.plan.spurious_wrong_eviction_probability;
        if p > 0.0 && self.rng.gen_bool(p) {
            res.spurious_wrong_evictions += 1;
            return true;
        }
        false
    }

    /// Whether this fault-service window delays the policy's next HIR
    /// flush in transit (partial outage); returns the delay in faults.
    pub(crate) fn flush_delay(&mut self, res: &mut ResilienceStats) -> Option<u64> {
        let p = self.plan.hir_delay_probability;
        if p > 0.0 && self.rng.gen_bool(p) {
            res.delayed_hir_flushes += 1;
            return Some(self.plan.hir_delay_faults);
        }
        None
    }

    /// Whether one victim response from the policy is corrupted in
    /// transit, forcing the engine onto its fallback victim.
    pub(crate) fn victim_dropped(&mut self, res: &mut ResilienceStats) -> bool {
        let p = self.plan.victim_drop_probability;
        if p > 0.0 && self.rng.gen_bool(p) {
            res.victims_dropped += 1;
            return true;
        }
        false
    }

    /// Whether this plan can drop victim responses at all. When it can,
    /// the engine tolerates stale (non-resident) victim offers — an
    /// expected after-effect of a drop — instead of treating them as a
    /// policy bug.
    pub(crate) fn drops_victims(&self) -> bool {
        self.plan.victim_drop_probability > 0.0
    }

    /// Checkpoint fingerprint: the RNG words and the loss streak. Both
    /// are replayed on resume; recording them lets the resumed run prove
    /// it reached the identical stream position.
    pub(crate) fn fingerprint(&self) -> ([u64; 4], u32) {
        (self.rng.state(), self.lost_in_row)
    }

    /// Decides the fate of a fault-completion signal. Returns
    /// `Some(retry_delay)` when the signal was lost and the driver must
    /// retry after that many cycles; `None` delivers it.
    pub(crate) fn completion_lost(&mut self, res: &mut ResilienceStats) -> Option<u64> {
        let p = self.plan.completion_loss_probability;
        if p == 0.0 {
            return None;
        }
        if let Some(max) = self.plan.max_completion_retries {
            if self.lost_in_row >= max {
                self.lost_in_row = 0;
                return None;
            }
        }
        if self.rng.gen_bool(p) {
            self.lost_in_row += 1;
            res.completions_lost += 1;
            return Some(self.plan.retry_cycles);
        }
        self.lost_in_row = 0;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvm_util::{FromJson, ToJson};

    #[test]
    fn noop_plan_draws_nothing_and_changes_nothing() {
        let mut st = FaultState::new(FaultPlan::none());
        let mut res = ResilienceStats::default();
        for now in [0u64, 1_000, 2_000_000] {
            assert_eq!(
                st.perturb_service(28_000, 512, now, &mut res),
                (28_000, 512)
            );
            assert_eq!(st.hir_transition(now), None);
            assert!(!st.spurious_wrong_eviction(&mut res));
            assert_eq!(st.completion_lost(&mut res), None);
        }
        assert!(!res.any());
    }

    #[test]
    fn identical_seeds_perturb_identically() {
        let mut a = FaultState::new(FaultPlan::latency_storm(99));
        let mut b = FaultState::new(FaultPlan::latency_storm(99));
        let (mut ra, mut rb) = (ResilienceStats::default(), ResilienceStats::default());
        for i in 0..500u64 {
            assert_eq!(
                a.perturb_service(28_000, 64, i * 31, &mut ra),
                b.perturb_service(28_000, 64, i * 31, &mut rb),
            );
        }
        assert_eq!(ra, rb);
        assert!(ra.injected_delay_cycles > 0 || ra.tail_latency_events > 0);
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let mut st = FaultState::new(FaultPlan {
            seed: 5,
            latency_jitter: 0.25,
            ..FaultPlan::none()
        });
        let mut res = ResilienceStats::default();
        for i in 0..1_000u64 {
            let (service, transfer) = st.perturb_service(28_000, 0, i, &mut res);
            assert!((21_000..28_000 + 7_000).contains(&service), "{service}");
            assert_eq!(transfer, 0);
        }
    }

    #[test]
    fn congestion_multiplies_transfer_inside_window_only() {
        let mut st = FaultState::new(FaultPlan::congestion(1));
        let mut res = ResilienceStats::default();
        // Duty 0.5 over 2M cycles: the first 1M are congested.
        let (s, t) = st.perturb_service(28_000, 100, 0, &mut res);
        assert_eq!((s, t), (28_000, 800));
        let (s, t) = st.perturb_service(28_000, 100, 1_500_000, &mut res);
        assert_eq!((s, t), (28_000, 100));
        assert_eq!(res.congested_services, 1);
        assert_eq!(res.injected_delay_cycles, 700);
    }

    #[test]
    fn outage_wave_reports_transitions_once() {
        let mut st = FaultState::new(FaultPlan::signal_chaos(2));
        // Period 512, duty 0.4: faults 0..204 down, 205..511 up.
        assert_eq!(st.hir_transition(0), Some(true));
        assert_eq!(st.hir_transition(100), None);
        assert_eq!(st.hir_transition(204), Some(false));
        assert_eq!(st.hir_transition(400), None);
        assert_eq!(st.hir_transition(512), Some(true));
    }

    #[test]
    fn bounded_completion_loss_always_delivers_eventually() {
        let mut st = FaultState::new(FaultPlan {
            seed: 3,
            completion_loss_probability: 1.0,
            retry_cycles: 10,
            max_completion_retries: Some(3),
            ..FaultPlan::none()
        });
        let mut res = ResilienceStats::default();
        let mut delivered = 0;
        let mut attempts = 0;
        while delivered < 5 {
            attempts += 1;
            if st.completion_lost(&mut res).is_none() {
                delivered += 1;
            }
            assert!(attempts <= 5 * 4, "must deliver every 4th attempt");
        }
        assert_eq!(res.completions_lost, 15);
    }

    #[test]
    fn unbounded_loss_never_delivers() {
        let mut st = FaultState::new(FaultPlan::livelock(4));
        let mut res = ResilienceStats::default();
        for _ in 0..100 {
            assert_eq!(st.completion_lost(&mut res), Some(10_000));
        }
        assert_eq!(res.completions_lost, 100);
    }

    #[test]
    fn presets_validate_and_none_is_noop() {
        for plan in [
            FaultPlan::none(),
            FaultPlan::latency_storm(1),
            FaultPlan::congestion(1),
            FaultPlan::completion_loss(1),
            FaultPlan::signal_chaos(1),
            FaultPlan::partial_outage(1),
            FaultPlan::victim_drop(1),
            FaultPlan::livelock(1),
        ] {
            plan.validate().unwrap();
        }
        assert!(FaultPlan::none().is_noop());
        assert!(!FaultPlan::signal_chaos(1).is_noop());
        assert!(!FaultPlan::partial_outage(1).is_noop());
        assert!(!FaultPlan::victim_drop(1).is_noop());
    }

    #[test]
    fn flush_delay_draws_only_when_enabled() {
        let mut st = FaultState::new(FaultPlan::none());
        let mut res = ResilienceStats::default();
        for _ in 0..100 {
            assert_eq!(st.flush_delay(&mut res), None);
        }
        assert!(!st.drops_victims());

        let mut st = FaultState::new(FaultPlan {
            seed: 7,
            hir_delay_probability: 1.0,
            hir_delay_faults: 24,
            ..FaultPlan::none()
        });
        for _ in 0..10 {
            assert_eq!(st.flush_delay(&mut res), Some(24));
        }
        assert_eq!(res.delayed_hir_flushes, 10);
    }

    #[test]
    fn victim_drops_are_counted_and_flagged() {
        let mut st = FaultState::new(FaultPlan::victim_drop(8));
        assert!(st.drops_victims());
        let mut res = ResilienceStats::default();
        let drops = (0..2_000).filter(|_| st.victim_dropped(&mut res)).count() as u64;
        // 5% of 2000 draws: far from zero, far from certain.
        assert!(drops > 0, "p=0.05 over 2000 draws must drop something");
        assert!(drops < 500, "p=0.05 cannot drop a quarter of responses");
        assert_eq!(res.victims_dropped, drops);
    }

    #[test]
    fn validate_rejects_bad_knobs() {
        let mut p = FaultPlan::none();
        p.latency_jitter = 1.0;
        assert!(p.validate().is_err());

        let mut p = FaultPlan::none();
        p.tail_probability = 1.5;
        assert!(p.validate().is_err());

        let mut p = FaultPlan::none();
        p.tail_probability = 0.1;
        p.tail_multiplier = 1;
        assert!(p.validate().is_err());

        let mut p = FaultPlan::none();
        p.congestion_period = 100;
        p.congestion_factor = 1;
        assert!(p.validate().is_err());

        let mut p = FaultPlan::none();
        p.completion_loss_probability = 0.5;
        p.retry_cycles = 0;
        assert!(p.validate().is_err());

        let mut p = FaultPlan::none();
        p.hir_outage_duty = f64::NAN;
        assert!(p.validate().is_err());

        let mut p = FaultPlan::none();
        p.hir_delay_probability = 0.2;
        p.hir_delay_faults = 0;
        assert!(p.validate().is_err());

        let mut p = FaultPlan::none();
        p.victim_drop_probability = -0.1;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_width_windows_with_actionable_messages() {
        // A 1%-duty window over 50 cycles rounds to zero congested
        // cycles: the plan would look active but inject nothing.
        let mut p = FaultPlan::congestion(1);
        p.congestion_period = 50;
        p.congestion_duty = 0.01;
        let msg = p.validate().unwrap_err().to_string();
        assert!(msg.contains("congestion_duty"), "{msg}");
        assert!(msg.contains("rounds to zero"), "{msg}");

        let mut p = FaultPlan::signal_chaos(1);
        p.hir_outage_period = 2;
        p.hir_outage_duty = 0.1;
        let msg = p.validate().unwrap_err().to_string();
        assert!(msg.contains("hir_outage_duty"), "{msg}");
        assert!(msg.contains("rounds to zero"), "{msg}");
    }

    #[test]
    fn json_roundtrip_and_sparse_defaults() {
        let plan = FaultPlan::completion_loss(42);
        let back = FaultPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(back, plan);

        let sparse = uvm_util::Json::parse(r#"{"seed": 9, "latency_jitter": 0.1}"#).unwrap();
        let p = FaultPlan::from_json(&sparse).unwrap();
        assert_eq!(p.seed, 9);
        assert!((p.latency_jitter - 0.1).abs() < 1e-12);
        assert_eq!(p.congestion_period, 0);
        assert_eq!(p.max_completion_retries, None);
    }
}
