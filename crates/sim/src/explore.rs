//! Bounded fault-space exploration: specs, case enumeration, shrinking.
//!
//! The chaos harness (fault plans + sanitizer) spot-checks the recovery
//! machinery one hand-picked plan at a time. This module turns those
//! spot-checks into *coverage*: an [`ExploreSpec`] describes a bounded
//! region of the fault space — deterministic fault-window placements on
//! a cycle grid, plus a batch of randomized plan seeds — and enumerates
//! it as a deterministic list of [`ExploreCase`]s. The bench-side engine
//! (`hpe-chaos explore`) runs every case under the full invariant set
//! and, for each failing case, calls [`shrink_plan`] to delta-debug the
//! plan down to a minimal counterexample, emitted as a replayable
//! [`ReproCase`].
//!
//! Everything here is pure bookkeeping — enumeration, shrinking control
//! flow, and report types. Running simulations and checking invariants
//! live in `hpe-bench`, which owns the policy zoo and the worker pool.
//!
//! # Examples
//!
//! ```
//! use uvm_sim::ExploreSpec;
//!
//! let spec = ExploreSpec::default();
//! spec.validate().unwrap();
//! let (cases, skipped) = spec.cases();
//! assert!(!cases.is_empty());
//! assert_eq!(skipped, 0);
//! ```

use uvm_types::ConfigError;
use uvm_util::{check_unknown_fields, impl_json_struct, FromJson, Json, JsonError, ToJson};

use crate::faults::{FaultFamily, FaultPlan, FaultWindow};
use crate::recovery::RetryPolicy;

/// Every cross-run invariant the exploration engine can assert, in the
/// order they are checked. An empty [`ExploreSpec::invariants`] selects
/// all of them.
///
/// * `completes` — the run finishes without a typed error;
/// * `sanitizer` — the runtime sanitizer (at the spec's cadence) finds
///   no structural invariant broken;
/// * `conservation` — end-of-run accounting holds: every op executed
///   exactly once and resident pages stay within capacity;
/// * `replay` — running the identical case twice yields byte-identical
///   statistics;
/// * `checkpoint` — pausing at the spec's checkpoint cycle, snapshotting,
///   and resuming a fresh simulation reproduces the straight run
///   byte-identically;
/// * `recovery` — a degraded HPE policy recovers once the injected HIR
///   outage has been over for its re-classification horizon;
/// * `containment` — with the case's fault plan scoped to one tenant of
///   a multi-tenant mix ([`ExploreSpec::tenants`]), every *other*
///   tenant's final statistics are byte-identical to its fault-free
///   run — the fault's blast radius stays inside the targeted tenant.
///   Skipped (like `checkpoint` at cycle 0) when the spec declares no
///   tenants.
pub const ALL_INVARIANTS: [&str; 7] = [
    "completes",
    "sanitizer",
    "conservation",
    "replay",
    "checkpoint",
    "recovery",
    "containment",
];

/// A bounded region of the fault space to explore (JSON-configurable).
///
/// Sparse JSON is accepted: every field has a default, so `{}` is a
/// valid (small, clean) spec.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreSpec {
    /// Workload abbreviation (see the workload registry).
    pub app: String,
    /// Eviction-policy label (see `hpe-bench`'s policy zoo).
    pub policy: String,
    /// Oversubscription rate in percent (50 or 75).
    pub rate: u64,
    /// Fault families whose window placements are enumerated; empty
    /// selects all families. Labels as in `FaultFamily::label`.
    pub families: Vec<String>,
    /// First cycle of the window-placement grid.
    pub grid_origin: u64,
    /// Exclusive upper bound of the grid.
    pub grid_limit: u64,
    /// Grid stride in cycles between candidate window starts.
    pub grid_stride: u64,
    /// Window widths (cycles) tried at every grid placement.
    pub widths: Vec<u64>,
    /// Randomized plan-batch size: the base plan re-seeded this many
    /// times (0 disables the batch).
    pub batch_runs: u64,
    /// Seed from which the batch derives its per-run plan seeds.
    pub batch_seed: u64,
    /// The plan every enumerated window and batch seed is grafted onto.
    pub base_plan: FaultPlan,
    /// Explicit plans checked before any enumeration (seeded-bad
    /// fixtures go here).
    pub fixtures: Vec<FaultPlan>,
    /// Invariants to assert per case (subset of [`ALL_INVARIANTS`];
    /// empty selects all).
    pub invariants: Vec<String>,
    /// Driver retry policy installed on every run (`None` = flat plan
    /// delay).
    pub retry: Option<RetryPolicy>,
    /// Sanitizer cadence in events for the `sanitizer` invariant.
    pub sanitize_cadence: u64,
    /// Pause cycle for the `checkpoint` invariant (0 disables it even
    /// when selected).
    pub checkpoint_at: u64,
    /// Probe budget per counterexample shrink.
    pub shrink_budget: u64,
    /// Tenants in the `containment` invariant's mix (0 disables the
    /// invariant even when selected; ≥ 2 makes it meaningful).
    pub tenants: u64,
    /// Which tenant (by position in the mix) each case's fault plan is
    /// scoped to; the other tenants must be untouched.
    pub tenant_target: u64,
    /// Per-tenant quota as a percentage of the tenant app's footprint in
    /// the containment mix.
    pub tenant_quota_pct: u64,
}

impl_json_struct!(ExploreSpec {
    app = "STN".to_string(),
    policy = "hpe".to_string(),
    rate = 75,
    families = Vec::new(),
    grid_origin = 0,
    grid_limit = 2_000_000,
    grid_stride = 1_000_000,
    widths = vec![200_000],
    batch_runs = 0,
    batch_seed = 2019,
    base_plan = FaultPlan::none(),
    fixtures = Vec::new(),
    invariants = Vec::new(),
    retry = None,
    sanitize_cadence = 1_024,
    checkpoint_at = 0,
    shrink_budget = 256,
    tenants = 0,
    tenant_target = 0,
    tenant_quota_pct = 75,
});

impl Default for ExploreSpec {
    fn default() -> Self {
        ExploreSpec {
            app: "STN".to_string(),
            policy: "hpe".to_string(),
            rate: 75,
            families: Vec::new(),
            grid_origin: 0,
            grid_limit: 2_000_000,
            grid_stride: 1_000_000,
            widths: vec![200_000],
            batch_runs: 0,
            batch_seed: 2019,
            base_plan: FaultPlan::none(),
            fixtures: Vec::new(),
            invariants: Vec::new(),
            retry: None,
            sanitize_cadence: 1_024,
            checkpoint_at: 0,
            shrink_budget: 256,
            tenants: 0,
            tenant_target: 0,
            tenant_quota_pct: 75,
        }
    }
}

impl ExploreSpec {
    /// The fault families whose windows are enumerated (empty spec field
    /// = all families).
    ///
    /// Unknown labels are rejected by [`Self::validate`]; this helper
    /// silently skips them so it stays total.
    pub fn family_set(&self) -> Vec<FaultFamily> {
        if self.families.is_empty() {
            FaultFamily::ALL.to_vec()
        } else {
            self.families
                .iter()
                .filter_map(|s| FaultFamily::parse(s))
                .collect()
        }
    }

    /// The invariants asserted per case (empty spec field = all).
    pub fn invariant_set(&self) -> Vec<String> {
        if self.invariants.is_empty() {
            ALL_INVARIANTS.iter().map(|s| s.to_string()).collect()
        } else {
            self.invariants.clone()
        }
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] naming the first offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.app.is_empty() {
            return Err(ConfigError::invalid("app", "must name a workload"));
        }
        if self.policy.is_empty() {
            return Err(ConfigError::invalid("policy", "must name a policy"));
        }
        if self.rate != 50 && self.rate != 75 {
            return Err(ConfigError::invalid(
                "rate",
                format!("must be 50 or 75, got {}", self.rate),
            ));
        }
        for f in &self.families {
            if FaultFamily::parse(f).is_none() {
                return Err(ConfigError::invalid(
                    "families",
                    format!("unknown fault family `{f}`"),
                ));
            }
        }
        for inv in &self.invariants {
            if !ALL_INVARIANTS.contains(&inv.as_str()) {
                return Err(ConfigError::invalid(
                    "invariants",
                    format!(
                        "unknown invariant `{inv}` (known: {})",
                        ALL_INVARIANTS.join(", ")
                    ),
                ));
            }
        }
        if self.widths.contains(&0) {
            return Err(ConfigError::invalid(
                "widths",
                "window widths must be nonzero",
            ));
        }
        let enumerating = !self.widths.is_empty() && self.grid_limit > self.grid_origin;
        if enumerating && self.grid_stride == 0 {
            return Err(ConfigError::invalid(
                "grid_stride",
                "must be nonzero when the placement grid is non-empty",
            ));
        }
        self.base_plan
            .validate()
            .map_err(|e| ConfigError::invalid("base_plan", e.to_string()))?;
        for (i, plan) in self.fixtures.iter().enumerate() {
            plan.validate()
                .map_err(|e| ConfigError::invalid("fixtures", format!("fixture {i}: {e}")))?;
        }
        if let Some(rp) = &self.retry {
            rp.validate()?;
        }
        if self.sanitize_cadence == 0 {
            return Err(ConfigError::invalid(
                "sanitize_cadence",
                "must be nonzero (a cadence of 0 would be clamped silently)",
            ));
        }
        if self.tenants > 0 {
            if self.tenant_target >= self.tenants {
                return Err(ConfigError::invalid(
                    "tenant_target",
                    format!(
                        "target {} out of range for a {}-tenant mix",
                        self.tenant_target, self.tenants
                    ),
                ));
            }
            if self.tenant_quota_pct == 0 {
                return Err(ConfigError::invalid("tenant_quota_pct", "must be nonzero"));
            }
        }
        if self.tenants < 2 && self.invariants.iter().any(|i| i == "containment") {
            return Err(ConfigError::invalid(
                "tenants",
                "the `containment` invariant needs a mix of at least 2 tenants",
            ));
        }
        Ok(())
    }

    /// Parses a spec document, rejecting unknown fields with an
    /// actionable message (see [`uvm_util::check_unknown_fields`]). The
    /// template carries a windowed base plan, one fixture exemplar, and
    /// the adaptive retry shape, so nested typos are caught too.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on unknown or malformed fields.
    pub fn from_json_strict(v: &Json) -> Result<Self, JsonError> {
        let mut template = ExploreSpec::default();
        template.base_plan = FaultPlan::template();
        template.fixtures.push(FaultPlan::template());
        template.retry = Some(RetryPolicy::adaptive());
        check_unknown_fields(v, &template.to_json(), "explore spec")?;
        ExploreSpec::from_json(v)
    }

    /// Grafts a window of `family` onto the base plan, supplying the
    /// family's supporting knob when the base plan leaves it inert (a
    /// congestion window without a factor, for example, would be
    /// rejected by `FaultPlan::validate`).
    fn windowed_plan(&self, window: FaultWindow) -> FaultPlan {
        let mut plan = self.base_plan.clone();
        match window.family {
            FaultFamily::Congestion if plan.congestion_factor < 2 => plan.congestion_factor = 8,
            FaultFamily::LatencyTail if plan.tail_multiplier < 2 => plan.tail_multiplier = 4,
            FaultFamily::CompletionLoss if plan.retry_cycles == 0 => plan.retry_cycles = 10_000,
            FaultFamily::FlushDelay if plan.hir_delay_faults == 0 => plan.hir_delay_faults = 24,
            _ => {}
        }
        plan.windows.push(window);
        plan
    }

    /// Enumerates the spec's cases deterministically: fixtures first,
    /// then every (family x width x grid start) window placement, then
    /// the randomized seed batch. Returns the cases plus how many
    /// enumerated plans were skipped as invalid (e.g. a grafted window
    /// overlapping a same-family base-plan window).
    pub fn cases(&self) -> (Vec<ExploreCase>, u64) {
        let mut cases = Vec::new();
        let mut skipped = 0u64;
        let mut id = 0u64;
        let mut push = |cases: &mut Vec<ExploreCase>, label: String, plan: FaultPlan| {
            cases.push(ExploreCase { id, label, plan });
            id += 1;
        };

        for (i, plan) in self.fixtures.iter().enumerate() {
            push(&mut cases, format!("fixture:{i}"), plan.clone());
        }

        for family in self.family_set() {
            for &width in &self.widths {
                let mut start = self.grid_origin;
                while start < self.grid_limit {
                    let window = FaultWindow {
                        family,
                        start,
                        width,
                    };
                    let plan = self.windowed_plan(window);
                    if plan.validate().is_ok() {
                        let label = format!("window:{}:{start}+{width}", family.label());
                        push(&mut cases, label, plan);
                    } else {
                        skipped += 1;
                    }
                    match start.checked_add(self.grid_stride.max(1)) {
                        Some(next) => start = next,
                        None => break,
                    }
                }
            }
        }

        for i in 0..self.batch_runs {
            let mut plan = self.base_plan.clone();
            // SplitMix64-style spread so consecutive batch indices land on
            // unrelated RNG streams.
            plan.seed = self
                .batch_seed
                .wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                | 1;
            if plan.validate().is_ok() {
                push(&mut cases, format!("batch:{i}"), plan);
            } else {
                skipped += 1;
            }
        }

        (cases, skipped)
    }

    /// How many distinct (family, start, width) placements the grid
    /// spans — the coverage denominator reported by `hpe-chaos explore`.
    pub fn distinct_placements(&self) -> u64 {
        if self.grid_limit <= self.grid_origin || self.widths.is_empty() {
            return 0;
        }
        let span = self.grid_limit - self.grid_origin;
        let starts = span.div_ceil(self.grid_stride.max(1));
        starts * self.widths.len() as u64 * self.family_set().len() as u64
    }
}

/// One enumerated run of the exploration engine.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreCase {
    /// Position in the spec's deterministic enumeration order.
    pub id: u64,
    /// Human-readable origin: `fixture:N`, `window:FAMILY:START+WIDTH`,
    /// or `batch:N`.
    pub label: String,
    /// The fault plan this case runs under.
    pub plan: FaultPlan,
}

impl_json_struct!(ExploreCase { id, label, plan });

/// Delta-debugs a failing plan down to a minimal one that still fails.
///
/// `fails` must return `true` when the candidate plan reproduces the
/// violation; it is only ever called with plans that pass
/// `FaultPlan::validate`. The shrink is greedy and deterministic:
///
/// 1. drop whole windows (first to last) while the failure reproduces;
/// 2. binary-search each surviving window's width down to the minimal
///    failing width (start unchanged);
/// 3. zero each probabilistic knob (probabilities and square-wave
///    periods) that is not needed to reproduce;
/// 4. collapse the seed toward 0 by halving.
///
/// Passes repeat until a fixpoint or until `budget` probe invocations
/// are spent; the best plan found so far is returned with the number of
/// probes used. The input plan itself is assumed to fail (it is not
/// re-probed).
pub fn shrink_plan(
    plan: &FaultPlan,
    budget: u64,
    fails: &mut dyn FnMut(&FaultPlan) -> bool,
) -> (FaultPlan, u64) {
    let mut best = plan.clone();
    let mut probes = 0u64;
    let mut probe = |candidate: &FaultPlan, probes: &mut u64| -> bool {
        if *probes >= budget || candidate.validate().is_err() {
            return false;
        }
        *probes += 1;
        fails(candidate)
    };

    loop {
        let before = best.clone();

        // 1. Drop whole windows.
        let mut i = 0;
        while i < best.windows.len() {
            let mut candidate = best.clone();
            candidate.windows.remove(i);
            if probe(&candidate, &mut probes) {
                best = candidate;
            } else {
                i += 1;
            }
        }

        // 2. Minimal failing width per window (binary search; width is
        // monotone for every windowed effect: a narrower window is a
        // subset of the wider one).
        for i in 0..best.windows.len() {
            let mut lo = 0u64; // widths <= lo pass (or untested)
            let mut hi = best.windows[i].width; // known to fail
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                let mut candidate = best.clone();
                candidate.windows[i].width = mid;
                if probe(&candidate, &mut probes) {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            best.windows[i].width = hi;
        }

        // 3. Zero probabilistic knobs one at a time.
        let zero_f64: [fn(&mut FaultPlan) -> &mut f64; 6] = [
            |p| &mut p.latency_jitter,
            |p| &mut p.tail_probability,
            |p| &mut p.completion_loss_probability,
            |p| &mut p.spurious_wrong_eviction_probability,
            |p| &mut p.hir_delay_probability,
            |p| &mut p.victim_drop_probability,
        ];
        for knob in zero_f64 {
            if *knob(&mut best) == 0.0 {
                continue;
            }
            let mut candidate = best.clone();
            *knob(&mut candidate) = 0.0;
            if probe(&candidate, &mut probes) {
                best = candidate;
            }
        }
        let zero_u64: [fn(&mut FaultPlan) -> &mut u64; 2] =
            [|p| &mut p.congestion_period, |p| &mut p.hir_outage_period];
        for knob in zero_u64 {
            if *knob(&mut best) == 0 {
                continue;
            }
            let mut candidate = best.clone();
            *knob(&mut candidate) = 0;
            if probe(&candidate, &mut probes) {
                best = candidate;
            }
        }

        // 4. Collapse the seed (only matters for plans that still draw).
        while best.seed != 0 {
            let mut candidate = best.clone();
            candidate.seed /= 2;
            if probe(&candidate, &mut probes) {
                best = candidate;
            } else {
                break;
            }
        }

        if best == before || probes >= budget {
            return (best, probes);
        }
    }
}

/// A minimal failing case found (and shrunk) by the exploration engine.
#[derive(Debug, Clone, PartialEq)]
pub struct Counterexample {
    /// Enumeration id of the originally failing case.
    pub case: u64,
    /// Origin label of the originally failing case.
    pub label: String,
    /// The violated invariant (one of [`ALL_INVARIANTS`]).
    pub invariant: String,
    /// The violation the *shrunk* plan reproduces.
    pub error: String,
    /// Probe runs the shrinker spent.
    pub probes: u64,
    /// The minimal plan (replay it with [`ReproCase`]).
    pub plan: FaultPlan,
}

impl_json_struct!(Counterexample {
    case,
    label,
    invariant,
    error,
    probes,
    plan
});

/// A self-contained, replayable repro: everything `hpe-chaos replay`
/// needs to re-execute a counterexample deterministically.
#[derive(Debug, Clone, PartialEq)]
pub struct ReproCase {
    /// Workload abbreviation.
    pub app: String,
    /// Eviction-policy label.
    pub policy: String,
    /// Oversubscription rate in percent.
    pub rate: u64,
    /// The invariant the plan violates.
    pub invariant: String,
    /// The recorded violation text (`hpe-chaos replay` byte-compares the
    /// reproduced violation against it).
    pub error: String,
    /// Driver retry policy of the failing run.
    pub retry: Option<RetryPolicy>,
    /// Sanitizer cadence of the failing run.
    pub sanitize_cadence: u64,
    /// Checkpoint pause cycle (0 = the invariant never pauses).
    pub checkpoint_at: u64,
    /// Tenant count of the `containment` invariant's mix (0 = the
    /// invariant was not in play).
    pub tenants: u64,
    /// Tenant the failing plan was scoped to in the containment mix.
    pub tenant_target: u64,
    /// Per-tenant quota percentage of the containment mix.
    pub tenant_quota_pct: u64,
    /// The minimal failing plan.
    pub plan: FaultPlan,
}

impl_json_struct!(ReproCase {
    app = "STN".to_string(),
    policy = "hpe".to_string(),
    rate = 75,
    invariant = String::new(),
    error = String::new(),
    retry = None,
    sanitize_cadence = 1_024,
    checkpoint_at = 0,
    tenants = 0,
    tenant_target = 0,
    tenant_quota_pct = 75,
    plan = FaultPlan::none(),
});

impl ReproCase {
    /// Parses a repro case, rejecting unknown fields with an actionable
    /// error (nearest-match suggestion) instead of silently ignoring them.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] naming the unknown field, or the underlying
    /// decode error.
    pub fn from_json_strict(v: &Json) -> Result<Self, JsonError> {
        // Optional fields are populated in the template so their inner
        // keys join the known set; the values themselves are irrelevant.
        let template = ReproCase {
            app: String::new(),
            policy: String::new(),
            rate: 0,
            invariant: String::new(),
            error: String::new(),
            retry: Some(RetryPolicy::adaptive()),
            sanitize_cadence: 0,
            checkpoint_at: 0,
            tenants: 0,
            tenant_target: 0,
            tenant_quota_pct: 0,
            plan: FaultPlan::template(),
        };
        check_unknown_fields(v, &template.to_json(), "repro case")?;
        ReproCase::from_json(v)
    }
}

/// The merged coverage report of one exploration — byte-identical for
/// any worker count (cases are merged by enumeration id and shrinking
/// runs serially in id order).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExploreReport {
    /// Workload abbreviation.
    pub app: String,
    /// Eviction-policy label.
    pub policy: String,
    /// Oversubscription rate in percent.
    pub rate: u64,
    /// Cases enumerated (fixtures + windows + batch).
    pub cases: u64,
    /// Fixture cases among them.
    pub fixture_cases: u64,
    /// Window-placement cases among them.
    pub window_cases: u64,
    /// Randomized batch cases among them.
    pub batch_cases: u64,
    /// Enumerated plans skipped as invalid (e.g. same-family overlap
    /// with a base-plan window).
    pub skipped_invalid: u64,
    /// Distinct (family, start, width) placements the grid spans.
    pub distinct_placements: u64,
    /// The invariants asserted on every case, in check order.
    pub invariants: Vec<String>,
    /// Simulation runs executed (invariant checks can need several runs
    /// per case; shrink probes are counted separately).
    pub runs: u64,
    /// Individual invariant checks performed (cases x invariants).
    pub invariant_checks: u64,
    /// Extra runs spent shrinking counterexamples.
    pub shrink_probes: u64,
    /// Minimal counterexamples, in case-enumeration order.
    pub counterexamples: Vec<Counterexample>,
}

impl_json_struct!(ExploreReport {
    app = String::new(),
    policy = String::new(),
    rate = 0,
    cases = 0,
    fixture_cases = 0,
    window_cases = 0,
    batch_cases = 0,
    skipped_invalid = 0,
    distinct_placements = 0,
    invariants = Vec::new(),
    runs = 0,
    invariant_checks = 0,
    shrink_probes = 0,
    counterexamples = Vec::new(),
});

#[cfg(test)]
mod tests {
    use super::*;
    use uvm_util::{FromJson, Json, ToJson};

    #[test]
    fn default_spec_validates_and_enumerates() {
        let spec = ExploreSpec::default();
        spec.validate().unwrap();
        let (cases, skipped) = spec.cases();
        assert_eq!(skipped, 0);
        // 7 families x 1 width x 2 grid starts.
        assert_eq!(cases.len(), 14);
        assert_eq!(spec.distinct_placements(), 14);
        // Enumeration ids are dense and ordered.
        for (i, c) in cases.iter().enumerate() {
            assert_eq!(c.id, i as u64);
        }
        assert!(cases[0].label.starts_with("window:congestion:"));
        // Every enumerated plan is valid and runnable.
        for c in &cases {
            c.plan.validate().unwrap();
        }
    }

    #[test]
    fn enumeration_orders_fixtures_windows_batch() {
        let mut spec = ExploreSpec {
            families: vec!["completion-loss".to_string()],
            grid_origin: 0,
            grid_limit: 300_000,
            grid_stride: 100_000,
            widths: vec![50_000],
            batch_runs: 2,
            ..ExploreSpec::default()
        };
        spec.fixtures.push(FaultPlan::latency_storm(3));
        spec.validate().unwrap();
        let (cases, skipped) = spec.cases();
        assert_eq!(skipped, 0);
        let labels: Vec<&str> = cases.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "fixture:0",
                "window:completion-loss:0+50000",
                "window:completion-loss:100000+50000",
                "window:completion-loss:200000+50000",
                "batch:0",
                "batch:1",
            ]
        );
        // The grafted completion-loss windows got a usable retry delay.
        assert!(cases[1].plan.retry_cycles > 0);
        // Batch seeds are distinct and deterministic.
        assert_ne!(cases[4].plan.seed, cases[5].plan.seed);
        let (again, _) = spec.cases();
        assert_eq!(again, cases);
    }

    #[test]
    fn overlapping_grafts_are_skipped_not_fatal() {
        let mut spec = ExploreSpec {
            families: vec!["congestion".to_string()],
            grid_origin: 0,
            grid_limit: 200_000,
            grid_stride: 100_000,
            widths: vec![100_000],
            ..ExploreSpec::default()
        };
        // The base plan already owns [50_000, 150_000): both grid
        // placements overlap it and must be skipped.
        spec.base_plan.congestion_factor = 8;
        spec.base_plan.windows.push(FaultWindow {
            family: FaultFamily::Congestion,
            start: 50_000,
            width: 100_000,
        });
        spec.validate().unwrap();
        let (cases, skipped) = spec.cases();
        assert_eq!(cases.len(), 0);
        assert_eq!(skipped, 2);
    }

    #[test]
    fn spec_validation_names_offending_fields() {
        let cases: Vec<(ExploreSpec, &str)> = vec![
            (
                ExploreSpec {
                    rate: 60,
                    ..ExploreSpec::default()
                },
                "rate",
            ),
            (
                ExploreSpec {
                    families: vec!["cosmic-rays".to_string()],
                    ..ExploreSpec::default()
                },
                "families",
            ),
            (
                ExploreSpec {
                    invariants: vec!["vibes".to_string()],
                    ..ExploreSpec::default()
                },
                "invariants",
            ),
            (
                ExploreSpec {
                    widths: vec![0],
                    ..ExploreSpec::default()
                },
                "widths",
            ),
            (
                ExploreSpec {
                    grid_stride: 0,
                    ..ExploreSpec::default()
                },
                "grid_stride",
            ),
            (
                ExploreSpec {
                    sanitize_cadence: 0,
                    ..ExploreSpec::default()
                },
                "sanitize_cadence",
            ),
            (
                ExploreSpec {
                    tenants: 2,
                    tenant_target: 2,
                    ..ExploreSpec::default()
                },
                "tenant_target",
            ),
            (
                ExploreSpec {
                    tenants: 2,
                    tenant_quota_pct: 0,
                    ..ExploreSpec::default()
                },
                "tenant_quota_pct",
            ),
            (
                ExploreSpec {
                    tenants: 1,
                    invariants: vec!["containment".to_string()],
                    ..ExploreSpec::default()
                },
                "tenants",
            ),
        ];
        for (spec, field) in cases {
            let err = spec.validate().unwrap_err();
            assert_eq!(err.parameter(), field, "{err}");
        }
    }

    #[test]
    fn spec_json_roundtrip_and_sparse_defaults() {
        let spec = ExploreSpec {
            app: "SGM".to_string(),
            batch_runs: 5,
            retry: Some(RetryPolicy::adaptive()),
            fixtures: vec![FaultPlan::livelock(1)],
            ..ExploreSpec::default()
        };
        let text = spec.to_json().to_string();
        let back = ExploreSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_json().to_string(), text);

        let sparse = ExploreSpec::from_json(&Json::parse("{}").unwrap()).unwrap();
        assert_eq!(sparse, ExploreSpec::default());
        let partial =
            ExploreSpec::from_json(&Json::parse(r#"{"app": "NW", "rate": 50}"#).unwrap()).unwrap();
        assert_eq!(partial.app, "NW");
        assert_eq!(partial.rate, 50);
        assert_eq!(partial.policy, "hpe");
    }

    #[test]
    fn spec_strict_parse_rejects_unknown_fields() {
        // A misspelled top-level key names itself and suggests the fix.
        let err = ExploreSpec::from_json_strict(&Json::parse(r#"{"tenats": 2}"#).unwrap())
            .unwrap_err()
            .to_string();
        assert!(err.contains("tenats"), "{err}");
        assert!(err.contains("tenants"), "{err}");
        // Unknown keys nested inside fixture plans are caught too.
        let nested = Json::parse(r#"{"fixtures": [{"seed": 1, "windoes": []}]}"#).unwrap();
        let err = ExploreSpec::from_json_strict(&nested)
            .unwrap_err()
            .to_string();
        assert!(err.contains("fixtures[0].windoes"), "{err}");
        // A valid sparse spec still parses to defaults.
        let ok = ExploreSpec::from_json_strict(&Json::parse("{}").unwrap()).unwrap();
        assert_eq!(ok, ExploreSpec::default());
        // Tenant knobs round-trip through the strict path.
        let spec = ExploreSpec::from_json_strict(
            &Json::parse(r#"{"tenants": 3, "tenant_target": 1, "tenant_quota_pct": 50}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(spec.tenants, 3);
        assert_eq!(spec.tenant_target, 1);
        assert_eq!(spec.tenant_quota_pct, 50);
    }

    #[test]
    fn shrink_drops_decoys_and_minimizes_width() {
        // Synthetic failure: the plan fails iff a completion-loss window
        // covers cycle 1_000_000. Decoy windows and noise knobs must be
        // stripped, and the width must shrink to the minimum that still
        // covers the target cycle.
        let mut plan = FaultPlan::none();
        plan.seed = 77;
        plan.latency_jitter = 0.25;
        plan.congestion_period = 2_000_000;
        plan.congestion_duty = 0.5;
        plan.congestion_factor = 8;
        plan.retry_cycles = 10_000;
        plan.hir_delay_faults = 24;
        plan.windows = vec![
            FaultWindow {
                family: FaultFamily::VictimDrop,
                start: 0,
                width: 500_000,
            },
            FaultWindow {
                family: FaultFamily::CompletionLoss,
                start: 900_000,
                width: 400_000,
            },
            FaultWindow {
                family: FaultFamily::FlushDelay,
                start: 2_000_000,
                width: 100_000,
            },
        ];
        plan.validate().unwrap();
        let mut fails = |p: &FaultPlan| {
            p.windows
                .iter()
                .any(|w| w.family == FaultFamily::CompletionLoss && w.contains(1_000_000))
        };
        let (shrunk, probes) = shrink_plan(&plan, 10_000, &mut fails);
        assert!(probes > 0);
        assert_eq!(shrunk.windows.len(), 1, "decoy windows dropped");
        let w = shrunk.windows[0];
        assert_eq!(w.family, FaultFamily::CompletionLoss);
        assert_eq!(w.start, 900_000);
        assert_eq!(w.width, 100_001, "minimal width still covering 1M");
        assert_eq!(shrunk.seed, 0, "seed collapsed");
        assert_eq!(shrunk.latency_jitter, 0.0, "noise knob zeroed");
        assert_eq!(shrunk.congestion_period, 0, "noise wave zeroed");
        assert!(fails(&shrunk), "shrunk plan still fails");
        assert!(shrunk.validate().is_ok(), "shrunk plan stays valid");

        // Shrinking is deterministic: same input, same bytes.
        let (again, again_probes) = shrink_plan(&plan, 10_000, &mut fails);
        assert_eq!(again.to_json().to_string(), shrunk.to_json().to_string());
        assert_eq!(again_probes, probes);
    }

    #[test]
    fn shrink_respects_budget() {
        let mut plan = FaultPlan::none();
        plan.retry_cycles = 10_000;
        plan.windows = vec![FaultWindow {
            family: FaultFamily::CompletionLoss,
            start: 0,
            width: 1 << 40,
        }];
        let mut calls = 0u64;
        // Fails whenever the window survives, so the width binary search
        // would burn ~40 probes unbudgeted.
        let (_, probes) = shrink_plan(&plan, 5, &mut |p| {
            calls += 1;
            !p.windows.is_empty()
        });
        assert_eq!(probes, 5, "budget caps probe spend");
        assert_eq!(calls, 5);
    }

    #[test]
    fn report_json_roundtrip() {
        let report = ExploreReport {
            app: "STN".to_string(),
            policy: "hpe".to_string(),
            rate: 75,
            cases: 3,
            fixture_cases: 1,
            window_cases: 2,
            batch_cases: 0,
            skipped_invalid: 0,
            distinct_placements: 2,
            invariants: ALL_INVARIANTS.iter().map(|s| s.to_string()).collect(),
            runs: 9,
            invariant_checks: 18,
            shrink_probes: 4,
            counterexamples: vec![Counterexample {
                case: 0,
                label: "fixture:0".to_string(),
                invariant: "completes".to_string(),
                error: "completion for page p12 lost 8 times".to_string(),
                probes: 4,
                plan: FaultPlan::livelock(1),
            }],
        };
        let text = report.to_json().to_string();
        let back = ExploreReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.to_json().to_string(), text);

        let sparse = ExploreReport::from_json(&Json::parse("{}").unwrap()).unwrap();
        assert_eq!(sparse, ExploreReport::default());
    }

    #[test]
    fn repro_case_json_roundtrip() {
        let repro = ReproCase {
            app: "STN".to_string(),
            policy: "lru".to_string(),
            rate: 50,
            invariant: "completes".to_string(),
            error: "retries exhausted for page p3".to_string(),
            retry: Some(RetryPolicy::default()),
            sanitize_cadence: 256,
            checkpoint_at: 1_000_000,
            tenants: 2,
            tenant_target: 1,
            tenant_quota_pct: 75,
            plan: FaultPlan::completion_loss(7),
        };
        let text = repro.to_json().to_string();
        let back = ReproCase::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, repro);
        assert_eq!(back.to_json().to_string(), text);
    }
}
