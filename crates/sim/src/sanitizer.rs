//! The opt-in runtime sanitizer: cadenced structural invariant checks.
//!
//! The static side of the safety net (`uvm-lint`) proves properties of
//! the *source*; this module is the dynamic side, validating properties
//! of the *running* simulation that no lexer can see — residency
//! accounting, HIR occupancy, chain partitioning, and the recovery state
//! machines. The engine owns a [`Sanitizer`] only when one is installed
//! with `Simulation::set_sanitizer`, so sanitizer-off runs pay a single
//! `Option` branch per event and nothing else.
//!
//! Checks are read-only by contract: a sanitizer-on run must produce
//! byte-identical [`uvm_types::SimStats`] to a sanitizer-off run. On a
//! violation the engine returns [`uvm_types::SimError::InvariantViolated`]
//! — a typed, classifiable failure — never a panic, so chaos campaigns
//! can complete and count it like any other outcome.
//!
//! # Invariants checked
//!
//! Every `cadence` retired events (and once more at end of run) the
//! engine validates:
//!
//! * **residency-capacity** — resident pages never exceed configured
//!   capacity frames;
//! * **residency-conservation** — `resident + in-flight` equals
//!   `serviced + prefetched − evicted` (pages are neither minted nor
//!   leaked across evictions);
//! * **lru-shadow** — recency stamps are bounded by the shadow's
//!   monotone clock and track only resident pages (only when the
//!   `lru-shadow` fallback is active);
//! * **circuit-breaker** — the HIR breaker is open exactly when its
//!   failure count reached the threshold;
//! * **policy-structure** — whatever the policy's own
//!   `EvictionPolicy::check_invariants` claims (for HPE: chain
//!   partitions sum to the chain length and the HIR cache's set/tag
//!   layout is self-consistent).
//!
//! # Examples
//!
//! ```
//! use uvm_sim::Sanitizer;
//!
//! let mut s = Sanitizer::new(4);
//! let due: Vec<bool> = (0..8).map(|_| s.tick()).collect();
//! assert_eq!(due, vec![false, false, false, true, false, false, false, true]);
//! assert_eq!(s.checks_run(), 2);
//! ```

/// Cadence bookkeeping for the engine's invariant checks.
///
/// Construct with [`Sanitizer::new`] and install via
/// `Simulation::set_sanitizer`. The struct holds no simulation state;
/// the engine calls [`Sanitizer::tick`] once per retired event and runs
/// its check pass whenever `tick` returns `true`.
#[derive(Debug, Clone)]
pub struct Sanitizer {
    cadence: u64,
    events_seen: u64,
    checks_run: u64,
}

/// Default check cadence (events between passes): frequent enough to
/// localize a corruption, cheap enough for chaos campaigns.
pub const DEFAULT_SANITIZER_CADENCE: u64 = 1024;

impl Default for Sanitizer {
    fn default() -> Self {
        Sanitizer::new(DEFAULT_SANITIZER_CADENCE)
    }
}

impl Sanitizer {
    /// Creates a sanitizer that requests a check pass every `cadence`
    /// events. A cadence of 0 is clamped to 1 (check after every event).
    pub fn new(cadence: u64) -> Self {
        Sanitizer {
            cadence: cadence.max(1),
            events_seen: 0,
            checks_run: 0,
        }
    }

    /// The configured cadence in events.
    pub fn cadence(&self) -> u64 {
        self.cadence
    }

    /// Notes one retired event; returns `true` when a check pass is due.
    pub fn tick(&mut self) -> bool {
        self.events_seen += 1;
        let due = self.events_seen.is_multiple_of(self.cadence);
        if due {
            self.checks_run += 1;
        }
        due
    }

    /// Notes the end-of-run final pass (always performed when a
    /// sanitizer is installed, regardless of cadence phase).
    pub(crate) fn note_final_check(&mut self) {
        self.checks_run += 1;
    }

    /// Events observed so far.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Check passes performed so far.
    pub fn checks_run(&self) -> u64 {
        self.checks_run
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cadence_zero_is_clamped_to_every_event() {
        let mut s = Sanitizer::new(0);
        assert_eq!(s.cadence(), 1);
        assert!(s.tick());
        assert!(s.tick());
        assert_eq!(s.checks_run(), 2);
        assert_eq!(s.events_seen(), 2);
    }

    #[test]
    fn default_uses_documented_cadence() {
        let s = Sanitizer::default();
        assert_eq!(s.cadence(), DEFAULT_SANITIZER_CADENCE);
        assert_eq!(s.checks_run(), 0);
    }

    #[test]
    fn final_check_counts_separately_from_cadence() {
        let mut s = Sanitizer::new(10);
        for _ in 0..5 {
            assert!(!s.tick());
        }
        s.note_final_check();
        assert_eq!(s.checks_run(), 1);
        assert_eq!(s.events_seen(), 5);
    }
}
