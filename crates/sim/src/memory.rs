//! GPU memory residency tracking.

use std::collections::HashSet;
use uvm_types::PageId;

/// The set of pages resident in GPU memory, bounded by a fixed capacity.
///
/// # Examples
///
/// ```
/// use uvm_sim::GpuMemory;
/// use uvm_types::PageId;
///
/// let mut mem = GpuMemory::new(2);
/// mem.insert(PageId(1)).unwrap();
/// mem.insert(PageId(2)).unwrap();
/// assert!(mem.is_full());
/// assert!(mem.insert(PageId(3)).is_err());
/// assert!(mem.remove(PageId(1)));
/// mem.insert(PageId(3)).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct GpuMemory {
    resident: HashSet<PageId>,
    capacity: u64,
}

/// Error returned when inserting into a full [`GpuMemory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryFull;

impl std::fmt::Display for MemoryFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("GPU memory is at capacity; evict a page first")
    }
}

impl std::error::Error for MemoryFull {}

impl GpuMemory {
    /// Creates GPU memory with room for `capacity` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "capacity must be nonzero");
        GpuMemory {
            resident: HashSet::with_capacity(capacity as usize),
            capacity,
        }
    }

    /// Capacity in pages.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of resident pages.
    pub fn len(&self) -> u64 {
        self.resident.len() as u64
    }

    /// Whether no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }

    /// Whether memory is at capacity.
    pub fn is_full(&self) -> bool {
        self.len() == self.capacity
    }

    /// Whether `page` is resident.
    pub fn is_resident(&self, page: PageId) -> bool {
        self.resident.contains(&page)
    }

    /// Makes `page` resident.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryFull`] if memory is at capacity and `page` is not
    /// already resident.
    pub fn insert(&mut self, page: PageId) -> Result<(), MemoryFull> {
        if self.resident.contains(&page) {
            return Ok(());
        }
        if self.is_full() {
            return Err(MemoryFull);
        }
        self.resident.insert(page);
        Ok(())
    }

    /// Removes `page`; returns whether it was resident.
    pub fn remove(&mut self, page: PageId) -> bool {
        self.resident.remove(&page)
    }

    /// The lowest-numbered resident page, if any.
    ///
    /// Used as the deterministic last-resort victim when a policy offers
    /// none while memory is full: taking the minimum (rather than an
    /// arbitrary set element) keeps runs reproducible across processes
    /// despite the hash set's randomized iteration order.
    pub fn min_resident(&self) -> Option<PageId> {
        self.resident.iter().copied().min() // lint:allow(hash-iteration) — min() is order-insensitive
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_to_capacity_and_rejects_overflow() {
        let mut mem = GpuMemory::new(3);
        for p in 0..3u64 {
            assert!(!mem.is_full());
            mem.insert(PageId(p)).unwrap();
        }
        assert!(mem.is_full());
        assert_eq!(mem.insert(PageId(9)), Err(MemoryFull));
        // Re-inserting a resident page is fine even when full.
        assert_eq!(mem.insert(PageId(0)), Ok(()));
        assert_eq!(mem.len(), 3);
    }

    #[test]
    fn remove_frees_a_slot() {
        let mut mem = GpuMemory::new(1);
        mem.insert(PageId(1)).unwrap();
        assert!(mem.remove(PageId(1)));
        assert!(!mem.remove(PageId(1)));
        assert!(mem.is_empty());
        mem.insert(PageId(2)).unwrap();
        assert!(mem.is_resident(PageId(2)));
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_rejected() {
        GpuMemory::new(0);
    }

    #[test]
    fn error_displays() {
        assert!(MemoryFull.to_string().contains("capacity"));
    }

    #[test]
    fn min_resident_is_deterministic() {
        let mut mem = GpuMemory::new(8);
        assert_eq!(mem.min_resident(), None);
        for p in [7u64, 3, 5, 9] {
            mem.insert(PageId(p)).unwrap();
        }
        assert_eq!(mem.min_resident(), Some(PageId(3)));
        mem.remove(PageId(3));
        assert_eq!(mem.min_resident(), Some(PageId(5)));
    }
}
