//! Multi-tenant bookkeeping: mix specs, the seeded open-loop arrival
//! process, admission control, and the quota ledger.
//!
//! A *tenant mix* models N applications (drawn from the 23 workload
//! models) sharing one GPU. Each tenant holds a residency **quota**
//! against a shared pool; an **admission controller** decides at each
//! arrival whether to admit, delay, or shed the tenant; and a **quota
//! ledger** accounts committed residency with checked invariants.
//!
//! The layer is deliberately *contract-only*: every cross-tenant
//! coupling — the committed-quota total, the active-lease count, the
//! pending backlog — derives from the declared contract (arrival time,
//! quota, lease length), never from a run's actual behavior. That is
//! what makes blast-radius containment hold **by construction**: a
//! `FaultPlan` scoped to tenant k can change only tenant k's own
//! simulation, because nothing another tenant's schedule, quota, or HIR
//! partition depends on is downstream of k's faults. The explore
//! invariant `containment` (see [`crate::ALL_INVARIANTS`]) verifies the
//! claim end to end: non-target tenants' `SimStats` must be
//! byte-identical to their fault-free run.
//!
//! Execution (running each admitted tenant's simulation, the fairness
//! grid, the worker pool) lives in `hpe-bench`; this module is pure
//! deterministic bookkeeping so the scheduler and its invariants are
//! testable without running a single simulated cycle.

use std::collections::BinaryHeap;

use uvm_types::{ConfigError, SimError, TenantId, TenantStats};
use uvm_util::{
    check_unknown_fields, impl_json_enum, impl_json_struct, FromJson, Json, JsonError, Rng, ToJson,
};
use uvm_workloads::registry;

/// Version tag of the [`TenantSnapshot`] schema.
pub const TENANT_SNAPSHOT_SCHEMA: u64 = 1;

/// Default declared lease length (cycles): generous enough that every
/// registered workload finishes a scaled run inside one lease.
pub const DEFAULT_LEASE_CYCLES: u64 = 50_000_000;

/// One tenant's declared contract: which app it runs, how many pages of
/// residency it asks for, and when it arrives.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Tenant id, unique within the mix.
    pub id: u64,
    /// Application abbreviation (registry key, e.g. "STN").
    pub app: String,
    /// Residency quota in pages, committed against the shared pool for
    /// the whole lease.
    pub quota_pages: u64,
    /// Arrival time on the mix clock (cycles).
    pub arrival: u64,
    /// Declared lease length (cycles). The ledger releases the quota at
    /// `admitted + lease_cycles` regardless of the run's actual length —
    /// a *contract* boundary, so no tenant's admission depends on
    /// another tenant's runtime behavior.
    pub lease_cycles: u64,
}

impl Default for TenantSpec {
    fn default() -> Self {
        TenantSpec {
            id: 0,
            app: String::new(),
            quota_pages: 0,
            arrival: 0,
            lease_cycles: DEFAULT_LEASE_CYCLES,
        }
    }
}

impl_json_struct!(TenantSpec {
    id = 0,
    app = String::new(),
    quota_pages = 0,
    arrival = 0,
    lease_cycles = DEFAULT_LEASE_CYCLES,
});

/// Seeded open-loop arrival generator: `count` tenants drawn from
/// `apps`, with deterministic uniform inter-arrival gaps of mean
/// `mean_gap` and quotas set to `quota_pct`% of each app's footprint.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalProcess {
    /// Tenants to generate (0 disables the generator).
    pub count: u64,
    /// Mean inter-arrival gap (cycles); gaps are drawn uniformly from
    /// `1..=2*mean_gap` so the process is open-loop but bounded.
    pub mean_gap: u64,
    /// Apps drawn (seeded) per arrival. Empty = all 23 registry apps.
    pub apps: Vec<String>,
    /// Quota as a percentage of the drawn app's footprint (the paper's
    /// oversubscription rate, per tenant).
    pub quota_pct: u64,
    /// Declared lease length for generated tenants.
    pub lease_cycles: u64,
}

impl Default for ArrivalProcess {
    fn default() -> Self {
        ArrivalProcess {
            count: 0,
            mean_gap: 1_000_000,
            apps: Vec::new(),
            quota_pct: 75,
            lease_cycles: DEFAULT_LEASE_CYCLES,
        }
    }
}

impl_json_struct!(ArrivalProcess {
    count = 0,
    mean_gap = 1_000_000,
    apps = Vec::new(),
    quota_pct = 75,
    lease_cycles = DEFAULT_LEASE_CYCLES,
});

/// Admission-control bounds. All three are *contract* signals — they
/// derive from declared quotas and lease timelines, never from runtime
/// fault behavior (see the module docs for why that matters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionControl {
    /// Committed quota may reach this percentage of the pool before new
    /// tenants are delayed (100 = no oversubscription of the pool;
    /// higher values model the paper's oversubscribed operation).
    pub max_oversubscription_pct: u64,
    /// Pending-backlog bound: arrivals beyond this queue depth are shed
    /// with [`uvm_types::SimError::AdmissionRejected`].
    pub max_pending: u64,
    /// Maximum concurrently active leases.
    pub max_active: u64,
}

impl Default for AdmissionControl {
    fn default() -> Self {
        AdmissionControl {
            max_oversubscription_pct: 100,
            max_pending: 4,
            max_active: 8,
        }
    }
}

impl_json_struct!(AdmissionControl {
    max_oversubscription_pct = 100,
    max_pending = 4,
    max_active = 8,
});

/// Whether HIR state is partitioned per tenant or carved out of one
/// shared structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HirMode {
    /// Every tenant gets the full paper-default HIR geometry (strong
    /// isolation; more total state).
    PerTenant,
    /// The HIR entry budget is divided by the number of leases active at
    /// the tenant's admission (contract-derived, so still deterministic
    /// and containment-safe).
    Shared,
}

impl_json_enum!(HirMode { PerTenant, Shared });

impl HirMode {
    /// CLI label: `per-tenant` / `shared`.
    pub fn label(self) -> &'static str {
        match self {
            HirMode::PerTenant => "per-tenant",
            HirMode::Shared => "shared",
        }
    }

    /// Parses a CLI label (also accepts the JSON variant names).
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "per-tenant" | "PerTenant" | "per_tenant" => Some(HirMode::PerTenant),
            "shared" | "Shared" => Some(HirMode::Shared),
            _ => None,
        }
    }
}

/// The full mix specification: pool size, explicit tenants and/or the
/// arrival generator, admission bounds, and the HIR sharing mode.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantMix {
    /// Seed for the arrival generator (and recorded in the fingerprint).
    pub seed: u64,
    /// Shared residency pool (pages).
    pub pool_pages: u64,
    /// Explicitly declared tenants.
    pub tenants: Vec<TenantSpec>,
    /// Seeded open-loop arrival generator appended after the explicit
    /// tenants (`count: 0` disables it).
    pub arrivals: ArrivalProcess,
    /// Admission-control bounds.
    pub admission: AdmissionControl,
    /// HIR sharing mode.
    pub hir_mode: HirMode,
}

impl Default for TenantMix {
    fn default() -> Self {
        TenantMix {
            seed: 2019,
            pool_pages: 0,
            tenants: Vec::new(),
            arrivals: ArrivalProcess::default(),
            admission: AdmissionControl::default(),
            hir_mode: HirMode::PerTenant,
        }
    }
}

impl_json_struct!(TenantMix {
    seed = 2019,
    pool_pages = 0,
    tenants = Vec::new(),
    arrivals = ArrivalProcess::default(),
    admission = AdmissionControl::default(),
    hir_mode = HirMode::PerTenant,
});

impl TenantMix {
    /// A uniform mix: each app in `apps` becomes one tenant with a quota
    /// of `quota_pct`% of its footprint, arriving `gap` cycles apart;
    /// the pool is sized to the largest quota so tenants genuinely
    /// contend when several leases overlap.
    pub fn uniform(apps: &[&str], quota_pct: u64, gap: u64, seed: u64) -> Self {
        let tenants: Vec<TenantSpec> = apps
            .iter()
            .enumerate()
            .map(|(i, abbr)| {
                let quota = registry::by_abbr(abbr)
                    .map(|a| a.footprint_pages() * quota_pct / 100)
                    .unwrap_or(0);
                TenantSpec {
                    id: i as u64,
                    app: (*abbr).to_string(),
                    quota_pages: quota,
                    arrival: i as u64 * gap,
                    lease_cycles: DEFAULT_LEASE_CYCLES,
                }
            })
            .collect();
        let pool = tenants.iter().map(|t| t.quota_pages).max().unwrap_or(0);
        TenantMix {
            seed,
            pool_pages: pool.max(1),
            tenants,
            ..TenantMix::default()
        }
    }

    /// Parses a mix document, rejecting unknown fields with an
    /// actionable message (see [`uvm_util::check_unknown_fields`]).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on unknown or malformed fields.
    pub fn from_json_strict(v: &Json) -> Result<Self, JsonError> {
        let mut template = TenantMix::default();
        template.tenants.push(TenantSpec::default());
        check_unknown_fields(v, &template.to_json(), "tenant mix")?;
        TenantMix::from_json(v)
    }

    /// Structural validation: nonzero pool, known apps, unique ids,
    /// sane admission bounds.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] naming the first offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.pool_pages == 0 {
            return Err(ConfigError::invalid("pool_pages", "must be nonzero"));
        }
        if self.admission.max_oversubscription_pct == 0 {
            return Err(ConfigError::invalid(
                "max_oversubscription_pct",
                "must be nonzero (100 = commit up to the whole pool)",
            ));
        }
        if self.admission.max_active == 0 {
            return Err(ConfigError::invalid(
                "max_active",
                "must allow at least one concurrent lease",
            ));
        }
        let mut ids: Vec<u64> = Vec::new();
        for t in &self.tenants {
            if registry::by_abbr(&t.app).is_none() {
                return Err(ConfigError::invalid(
                    "tenants",
                    format!("unknown app '{}' for tenant {}", t.app, t.id),
                ));
            }
            if t.lease_cycles == 0 {
                return Err(ConfigError::invalid(
                    "lease_cycles",
                    format!("tenant {} declares a zero-length lease", t.id),
                ));
            }
            if ids.contains(&t.id) {
                return Err(ConfigError::invalid(
                    "tenants",
                    format!("duplicate tenant id {}", t.id),
                ));
            }
            ids.push(t.id);
        }
        for abbr in &self.arrivals.apps {
            if registry::by_abbr(abbr).is_none() {
                return Err(ConfigError::invalid(
                    "arrivals",
                    format!("unknown app '{abbr}' in the arrival pool"),
                ));
            }
        }
        if self.arrivals.count > 0 {
            if self.arrivals.mean_gap == 0 {
                return Err(ConfigError::invalid("mean_gap", "must be nonzero"));
            }
            if self.arrivals.quota_pct == 0 {
                return Err(ConfigError::invalid("quota_pct", "must be nonzero"));
            }
            if self.arrivals.lease_cycles == 0 {
                return Err(ConfigError::invalid("arrivals", "zero-length lease"));
            }
        }
        Ok(())
    }

    /// The fully resolved tenant list: explicit tenants plus the seeded
    /// arrivals, sorted by `(arrival, id)`. Generated tenants take ids
    /// after the highest explicit one.
    pub fn resolved_tenants(&self) -> Vec<TenantSpec> {
        let mut tenants = self.tenants.clone();
        if self.arrivals.count > 0 {
            let pool: Vec<&str> = if self.arrivals.apps.is_empty() {
                registry::all().iter().map(|a| a.abbr()).collect()
            } else {
                self.arrivals.apps.iter().map(String::as_str).collect()
            };
            let mut rng = Rng::seed_from_u64(self.seed);
            let first_id = tenants.iter().map(|t| t.id + 1).max().unwrap_or(0);
            let mut clock = 0u64;
            for next_id in first_id..first_id + self.arrivals.count {
                clock += 1 + rng.next_u64() % (2 * self.arrivals.mean_gap);
                let abbr = pool[(rng.next_u64() % pool.len() as u64) as usize];
                let quota = registry::by_abbr(abbr)
                    .map(|a| a.footprint_pages() * self.arrivals.quota_pct / 100)
                    .unwrap_or(0);
                tenants.push(TenantSpec {
                    id: next_id,
                    app: abbr.to_string(),
                    quota_pages: quota,
                    arrival: clock,
                    lease_cycles: self.arrivals.lease_cycles,
                });
            }
        }
        tenants.sort_by_key(|t| (t.arrival, t.id));
        tenants
    }

    /// A 64-bit FNV-1a hex digest over the mix JSON: two mixes with the
    /// same fingerprint resolve the same tenants and the same admission
    /// timeline. Snapshots refuse to resume across fingerprints.
    pub fn fingerprint(&self) -> String {
        format!("{:016x}", fnv1a(self.to_json().to_string().as_bytes()))
    }
}

/// FNV-1a, 64-bit (same digest the campaign engine uses for spec drift
/// detection; collision resistance is not a goal).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Quota ledger
// ---------------------------------------------------------------------------

/// Checked accounting of committed residency quota against the pool.
///
/// Every admission commits the tenant's whole quota; every lease end
/// releases it. The ledger's invariants (commitments never exceed the
/// bound, releases never underflow) are enforced on every transition
/// and surface as typed [`SimError::QuotaViolated`] — never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuotaLedger {
    pool: u64,
    bound: u64,
    committed: u64,
    active: u64,
}

impl QuotaLedger {
    /// A ledger over `pool` pages with the committed-quota bound set to
    /// `max_oversubscription_pct`% of the pool.
    pub fn new(pool: u64, max_oversubscription_pct: u64) -> Self {
        QuotaLedger {
            pool,
            bound: pool.saturating_mul(max_oversubscription_pct) / 100,
            committed: 0,
            active: 0,
        }
    }

    /// Pages currently committed.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Active leases.
    pub fn active(&self) -> u64 {
        self.active
    }

    /// The committed-quota bound (pages).
    pub fn bound(&self) -> u64 {
        self.bound
    }

    /// Whether a further `quota` fits under the bound.
    pub fn fits(&self, quota: u64) -> bool {
        self.committed.saturating_add(quota) <= self.bound
    }

    /// Commits `quota` for `tenant`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QuotaViolated`] if the commitment would
    /// exceed the bound — the admission controller must check
    /// [`QuotaLedger::fits`] first, so reaching this is an accounting
    /// bug surfaced as a typed error.
    pub fn commit(&mut self, tenant: TenantId, quota: u64) -> Result<(), SimError> {
        if !self.fits(quota) {
            return Err(SimError::QuotaViolated {
                tenant,
                committed: self.committed.saturating_add(quota),
                quota: self.bound,
            });
        }
        self.committed += quota;
        self.active += 1;
        Ok(())
    }

    /// Releases `quota` at a lease end.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QuotaViolated`] on underflow (releasing more
    /// than was committed).
    pub fn release(&mut self, tenant: TenantId, quota: u64) -> Result<(), SimError> {
        if quota > self.committed || self.active == 0 {
            return Err(SimError::QuotaViolated {
                tenant,
                committed: self.committed,
                quota,
            });
        }
        self.committed -= quota;
        self.active -= 1;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Admission schedule
// ---------------------------------------------------------------------------

/// How admission resolved one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionOutcome {
    /// Admitted at its arrival time.
    Admitted,
    /// Queued and admitted later, at a lease-release boundary.
    Delayed,
    /// Shed: the tenant never runs.
    Rejected,
}

impl_json_enum!(AdmissionOutcome {
    Admitted,
    Delayed,
    Rejected
});

impl AdmissionOutcome {
    /// Lower-case report label.
    pub fn label(self) -> &'static str {
        match self {
            AdmissionOutcome::Admitted => "admitted",
            AdmissionOutcome::Delayed => "delayed",
            AdmissionOutcome::Rejected => "rejected",
        }
    }
}

/// One tenant's resolved admission.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantAdmission {
    /// The tenant's declared contract.
    pub spec: TenantSpec,
    /// How admission resolved it.
    pub outcome: AdmissionOutcome,
    /// When the tenant was admitted (== `spec.arrival` when admitted
    /// immediately; later when delayed; 0 when rejected).
    pub admitted_at: u64,
    /// Leases active (including this one) at the admission instant —
    /// the divisor for [`HirMode::Shared`] geometry scaling.
    pub concurrent: u64,
    /// Why the tenant was rejected (empty otherwise).
    pub reject_reason: String,
}

impl TenantAdmission {
    /// The typed rejection error for a rejected admission, counted by
    /// the report (never a panic).
    pub fn rejection(&self) -> Option<SimError> {
        (self.outcome == AdmissionOutcome::Rejected).then(|| SimError::AdmissionRejected {
            tenant: TenantId(self.spec.id),
            reason: self.reject_reason.clone(),
            arrival: self.spec.arrival,
        })
    }
}

/// The deterministic admission timeline of a whole mix.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSchedule {
    /// Fingerprint of the producing mix.
    pub fingerprint: String,
    /// Per-tenant admissions, in `(arrival, id)` order.
    pub admissions: Vec<TenantAdmission>,
    /// Tenants shed by admission control.
    pub rejected: u64,
    /// Tenants admitted late.
    pub delayed: u64,
}

/// An active lease in the scheduler's release queue, ordered by
/// `(end, seq)` so simultaneous releases resolve deterministically.
#[derive(Debug, PartialEq, Eq)]
struct Lease {
    end: u64,
    seq: u64,
    tenant: TenantId,
    quota: u64,
}

impl Ord for Lease {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-end-first.
        (other.end, other.seq).cmp(&(self.end, self.seq))
    }
}

impl PartialOrd for Lease {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Resolves the admission timeline for `mix`.
///
/// The state machine walks arrivals in `(arrival, id)` order. Before
/// each arrival it drains lease releases up to that instant, retrying
/// the pending queue FIFO at every release boundary. An arrival is
/// admitted when its quota fits the ledger bound and a lease slot is
/// free; delayed into the pending queue when not (bounded by
/// `max_pending`); and rejected — typed, counted, never a panic — when
/// its quota can never fit or the backlog is full.
///
/// # Errors
///
/// Returns [`SimError::Config`] if the mix fails validation, or
/// [`SimError::QuotaViolated`] if the ledger catches an accounting bug.
pub fn schedule(mix: &TenantMix) -> Result<TenantSchedule, SimError> {
    mix.validate()?;
    let tenants = mix.resolved_tenants();
    let mut state = Scheduler {
        tenants: &tenants,
        max_active: mix.admission.max_active,
        ledger: QuotaLedger::new(mix.pool_pages, mix.admission.max_oversubscription_pct),
        leases: BinaryHeap::new(),
        pending: Vec::new(),
        seq: 0,
        admissions: vec![None; tenants.len()],
    };
    let mut rejected = 0u64;
    let mut delayed = 0u64;

    for (idx, t) in tenants.iter().enumerate() {
        let t = t.clone();
        state.drain_to(t.arrival)?;
        if t.quota_pages == 0 {
            state.reject(idx, "zero residency quota".to_string());
            rejected += 1;
            continue;
        }
        if t.quota_pages > state.ledger.bound() {
            let reason = format!(
                "quota {} pages exceeds the pool bound of {} pages \
                 ({}% of a {}-page pool)",
                t.quota_pages,
                state.ledger.bound(),
                mix.admission.max_oversubscription_pct,
                mix.pool_pages,
            );
            state.reject(idx, reason);
            rejected += 1;
            continue;
        }
        if state.fits(idx) && state.pending.is_empty() {
            state.admit(idx, t.arrival, AdmissionOutcome::Admitted)?;
        } else if (state.pending.len() as u64) < mix.admission.max_pending {
            state.pending.push(idx);
            delayed += 1;
        } else {
            let reason = format!(
                "admission backlog full ({} tenants pending, bound {})",
                state.pending.len(),
                mix.admission.max_pending,
            );
            state.reject(idx, reason);
            rejected += 1;
        }
    }
    // Drain every remaining lease so the whole pending queue resolves.
    state.drain_to(u64::MAX)?;
    debug_assert!(state.pending.is_empty(), "pending tenants after full drain");

    let admissions: Vec<TenantAdmission> = state
        .admissions
        .into_iter()
        .map(|a| a.expect("every tenant resolved")) // lint:allow(unwrap)
        .collect();
    Ok(TenantSchedule {
        fingerprint: mix.fingerprint(),
        admissions,
        rejected,
        delayed,
    })
}

/// Working state of [`schedule`]: the ledger, the lease release queue,
/// and the FIFO pending backlog.
struct Scheduler<'a> {
    tenants: &'a [TenantSpec],
    max_active: u64,
    ledger: QuotaLedger,
    leases: BinaryHeap<Lease>,
    pending: Vec<usize>, // indices into `tenants`, FIFO
    seq: u64,
    admissions: Vec<Option<TenantAdmission>>,
}

impl Scheduler<'_> {
    /// Whether tenant `idx` fits right now (quota under the bound and a
    /// lease slot free).
    fn fits(&self, idx: usize) -> bool {
        self.ledger.fits(self.tenants[idx].quota_pages) && self.ledger.active() < self.max_active
    }

    /// Commits the tenant's quota, opens its lease, and records the
    /// admission row.
    fn admit(&mut self, idx: usize, at: u64, outcome: AdmissionOutcome) -> Result<(), SimError> {
        let t = &self.tenants[idx];
        self.ledger.commit(TenantId(t.id), t.quota_pages)?;
        self.seq += 1;
        self.leases.push(Lease {
            end: at.saturating_add(t.lease_cycles),
            seq: self.seq,
            tenant: TenantId(t.id),
            quota: t.quota_pages,
        });
        self.admissions[idx] = Some(TenantAdmission {
            spec: t.clone(),
            outcome,
            admitted_at: at,
            concurrent: self.ledger.active(),
            reject_reason: String::new(),
        });
        Ok(())
    }

    /// Records a rejection row (typed error available via
    /// [`TenantAdmission::rejection`]).
    fn reject(&mut self, idx: usize, reason: String) {
        self.admissions[idx] = Some(TenantAdmission {
            spec: self.tenants[idx].clone(),
            outcome: AdmissionOutcome::Rejected,
            admitted_at: 0,
            concurrent: 0,
            reject_reason: reason,
        });
    }

    /// Releases every lease ending at or before `horizon`, admitting the
    /// pending queue FIFO at each release boundary.
    fn drain_to(&mut self, horizon: u64) -> Result<(), SimError> {
        while self.leases.peek().is_some_and(|l| l.end <= horizon) {
            let lease = self.leases.pop().expect("peeked nonempty"); // lint:allow(unwrap) — guarded by peek
            self.ledger.release(lease.tenant, lease.quota)?;
            while let Some(&idx) = self.pending.first() {
                if self.fits(idx) {
                    self.pending.remove(0);
                    self.admit(idx, lease.end, AdmissionOutcome::Delayed)?;
                } else {
                    break;
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Report & snapshot
// ---------------------------------------------------------------------------

/// The merged result of running a whole mix (execution lives in
/// `hpe-bench`; the type lives here so every tool can parse it).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantReport {
    /// Fingerprint of the producing mix.
    pub fingerprint: String,
    /// Policy label every tenant ran under.
    pub policy: String,
    /// HIR sharing mode label (`per-tenant` / `shared`).
    pub hir_mode: String,
    /// Name of the fault plan scoped into the mix ("" = fault-free).
    pub plan: String,
    /// Tenant id the plan was scoped to (`None` = fault-free mix).
    pub fault_tenant: Option<u64>,
    /// Tenants shed by admission control.
    pub rejected: u64,
    /// Tenants admitted late.
    pub delayed: u64,
    /// Mix makespan: the latest tenant completion on the mix clock.
    pub makespan: u64,
    /// Per-tenant results, in `(arrival, id)` order.
    pub tenants: Vec<TenantStats>,
}

impl_json_struct!(TenantReport {
    fingerprint = String::new(),
    policy = String::new(),
    hir_mode = String::new(),
    plan = String::new(),
    fault_tenant = None,
    rejected = 0,
    delayed = 0,
    makespan = 0,
    tenants = Vec::new(),
});

impl TenantReport {
    /// Parses a report, rejecting unknown fields.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on unknown or malformed fields.
    pub fn from_json_strict(v: &Json) -> Result<Self, JsonError> {
        // Optional fields are populated so their inner keys join the
        // known set.
        let mut template = TenantReport {
            fault_tenant: Some(0),
            ..TenantReport::default()
        };
        template.tenants.push(TenantStats::default());
        check_unknown_fields(v, &template.to_json(), "tenant report")?;
        TenantReport::from_json(v)
    }

    /// p99 of per-tenant queueing-inflated slowdown (max for small
    /// mixes), over tenants that actually ran.
    pub fn p99_slowdown(&self) -> f64 {
        let mut s: Vec<f64> = self
            .tenants
            .iter()
            .filter(|t| t.stats.cycles > 0)
            .map(TenantStats::slowdown)
            .collect();
        if s.is_empty() {
            return 0.0;
        }
        s.sort_by(|a, b| a.partial_cmp(b).expect("slowdowns are finite")); // lint:allow(unwrap)
        let idx = ((s.len() as f64 * 0.99).ceil() as usize).clamp(1, s.len()) - 1;
        s[idx]
    }

    /// Aggregate throughput: instructions retired across all tenants
    /// per kilocycle of makespan (0 for an empty or rejected-only mix).
    pub fn throughput(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        let instructions: u64 = self.tenants.iter().map(|t| t.stats.instructions).sum();
        instructions as f64 * 1_000.0 / self.makespan as f64
    }
}

/// On-disk snapshot of a mix run in flight: completed tenants plus the
/// mix fingerprint, written at tenant boundaries. A resumed run
/// recomputes the schedule from the (fingerprint-checked) mix and skips
/// the completed tenants, so the merged report is byte-identical to an
/// uninterrupted run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantSnapshot {
    /// Snapshot schema version ([`TENANT_SNAPSHOT_SCHEMA`]).
    pub schema: u64,
    /// Fingerprint of the producing mix.
    pub fingerprint: String,
    /// Total tenants in the resolved mix.
    pub total: u64,
    /// Completed tenants, a prefix of the mix's `(arrival, id)` order.
    pub completed: Vec<TenantStats>,
}

impl_json_struct!(TenantSnapshot {
    schema = 0,
    fingerprint = String::new(),
    total = 0,
    completed = Vec::new(),
});

impl TenantSnapshot {
    /// Parses a snapshot, rejecting unknown fields.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on unknown or malformed fields.
    pub fn from_json_strict(v: &Json) -> Result<Self, JsonError> {
        let mut template = TenantSnapshot::default();
        template.completed.push(TenantStats::default());
        check_unknown_fields(v, &template.to_json(), "tenant snapshot")?;
        TenantSnapshot::from_json(v)
    }

    /// Structural validation beyond JSON well-formedness.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on a wrong schema version, a completed
    /// list longer than the mix, or duplicate tenant ids.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.schema != TENANT_SNAPSHOT_SCHEMA {
            return Err(ConfigError::invalid(
                "schema",
                format!("{} (expected {TENANT_SNAPSHOT_SCHEMA})", self.schema),
            ));
        }
        if self.completed.len() as u64 > self.total {
            return Err(ConfigError::invalid(
                "completed",
                format!(
                    "{} completed tenants exceed the mix total {}",
                    self.completed.len(),
                    self.total
                ),
            ));
        }
        let mut seen: Vec<u64> = Vec::new();
        for t in &self.completed {
            if seen.contains(&t.tenant.0) {
                return Err(ConfigError::invalid(
                    "completed",
                    format!("duplicate tenant id {}", t.tenant),
                ));
            }
            seen.push(t.tenant.0);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tenant_mix() -> TenantMix {
        TenantMix {
            pool_pages: 1024,
            tenants: vec![
                TenantSpec {
                    id: 0,
                    app: "STN".into(),
                    quota_pages: 576,
                    arrival: 0,
                    lease_cycles: 1_000,
                },
                TenantSpec {
                    id: 1,
                    app: "MVT".into(),
                    quota_pages: 768,
                    arrival: 100,
                    lease_cycles: 1_000,
                },
            ],
            ..TenantMix::default()
        }
    }

    #[test]
    fn mix_json_roundtrip_and_sparse_defaults() {
        let mix = two_tenant_mix();
        let text = mix.to_json().to_string();
        let back = TenantMix::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, mix);
        assert_eq!(back.to_json().to_string(), text);
        let sparse = TenantMix::from_json(&Json::parse("{}").unwrap()).unwrap();
        assert_eq!(sparse, TenantMix::default());
    }

    #[test]
    fn strict_parse_rejects_misspelled_knobs() {
        let text = r#"{ "pool_pages": 100, "admision": {} }"#;
        let err = TenantMix::from_json_strict(&Json::parse(text).unwrap()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("admision"), "{msg}");
        assert!(msg.contains("admission"), "{msg}");
        // Nested tenant field typo, via the array exemplar.
        let text = r#"{ "tenants": [ { "id": 0, "quota": 5 } ] }"#;
        let err = TenantMix::from_json_strict(&Json::parse(text).unwrap()).unwrap_err();
        assert!(err.to_string().contains("tenants[0].quota"), "{err}");
    }

    #[test]
    fn validation_names_offending_fields() {
        let mut mix = two_tenant_mix();
        mix.pool_pages = 0;
        assert_eq!(mix.validate().unwrap_err().parameter(), "pool_pages");
        let mut mix = two_tenant_mix();
        mix.tenants[1].id = 0;
        assert_eq!(mix.validate().unwrap_err().parameter(), "tenants");
        let mut mix = two_tenant_mix();
        mix.tenants[0].app = "XXX".into();
        assert_eq!(mix.validate().unwrap_err().parameter(), "tenants");
        let mut mix = two_tenant_mix();
        mix.admission.max_active = 0;
        assert_eq!(mix.validate().unwrap_err().parameter(), "max_active");
    }

    #[test]
    fn arrival_process_is_seeded_and_deterministic() {
        let mix = TenantMix {
            pool_pages: 4096,
            arrivals: ArrivalProcess {
                count: 5,
                mean_gap: 1_000,
                apps: vec!["STN".into(), "MVT".into(), "CUT".into()],
                quota_pct: 75,
                lease_cycles: 10_000,
            },
            ..TenantMix::default()
        };
        let a = mix.resolved_tenants();
        let b = mix.resolved_tenants();
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        let mut reseeded = mix.clone();
        reseeded.seed = 7;
        assert_ne!(reseeded.resolved_tenants(), a);
    }

    #[test]
    fn schedule_admits_delays_and_rejects() {
        // Pool 1024, quotas 576 + 768: the second tenant cannot fit
        // until the first lease releases at cycle 1000.
        let mix = two_tenant_mix();
        let sched = schedule(&mix).unwrap();
        assert_eq!(sched.admissions.len(), 2);
        assert_eq!(sched.admissions[0].outcome, AdmissionOutcome::Admitted);
        assert_eq!(sched.admissions[0].admitted_at, 0);
        assert_eq!(sched.admissions[1].outcome, AdmissionOutcome::Delayed);
        assert_eq!(sched.admissions[1].admitted_at, 1_000);
        assert_eq!(sched.delayed, 1);
        assert_eq!(sched.rejected, 0);
    }

    #[test]
    fn quota_boundary_zero_is_rejected_typed() {
        let mut mix = two_tenant_mix();
        mix.tenants[0].quota_pages = 0;
        let sched = schedule(&mix).unwrap();
        assert_eq!(sched.admissions[0].outcome, AdmissionOutcome::Rejected);
        assert_eq!(sched.rejected, 1);
        let err = sched.admissions[0].rejection().unwrap();
        assert_eq!(err.kind(), "AdmissionRejected");
        assert!(err.to_string().contains("zero residency quota"));
    }

    #[test]
    fn quota_boundary_equal_to_pool_is_admitted() {
        let mut mix = two_tenant_mix();
        mix.tenants[0].quota_pages = 1024; // == pool
        let sched = schedule(&mix).unwrap();
        assert_eq!(sched.admissions[0].outcome, AdmissionOutcome::Admitted);
        // The second tenant still fits only after the release.
        assert_eq!(sched.admissions[1].outcome, AdmissionOutcome::Delayed);
    }

    #[test]
    fn quota_boundary_above_pool_is_rejected_not_delayed() {
        let mut mix = two_tenant_mix();
        mix.tenants[1].quota_pages = 2048; // > pool: can never fit
        let sched = schedule(&mix).unwrap();
        assert_eq!(sched.admissions[1].outcome, AdmissionOutcome::Rejected);
        let reason = &sched.admissions[1].reject_reason;
        assert!(reason.contains("exceeds the pool bound"), "{reason}");
    }

    #[test]
    fn backlog_bound_sheds_excess_arrivals() {
        let mut mix = two_tenant_mix();
        mix.admission.max_pending = 0;
        let sched = schedule(&mix).unwrap();
        assert_eq!(sched.admissions[1].outcome, AdmissionOutcome::Rejected);
        assert!(sched.admissions[1]
            .reject_reason
            .contains("admission backlog full"));
    }

    #[test]
    fn max_active_bound_serializes_leases() {
        let mut mix = two_tenant_mix();
        // Both quotas fit the pool simultaneously, but only one lease
        // may be active at a time.
        mix.pool_pages = 4096;
        mix.admission.max_active = 1;
        let sched = schedule(&mix).unwrap();
        assert_eq!(sched.admissions[0].outcome, AdmissionOutcome::Admitted);
        assert_eq!(sched.admissions[1].outcome, AdmissionOutcome::Delayed);
        assert_eq!(sched.admissions[1].admitted_at, 1_000);
        assert_eq!(sched.admissions[1].concurrent, 1);
    }

    #[test]
    fn ledger_catches_underflow_and_overflow_as_typed_errors() {
        let mut ledger = QuotaLedger::new(100, 100);
        assert!(ledger.commit(TenantId(0), 60).is_ok());
        let over = ledger.commit(TenantId(1), 60).unwrap_err();
        assert_eq!(over.kind(), "QuotaViolated");
        let under = ledger.release(TenantId(0), 90).unwrap_err();
        assert_eq!(under.kind(), "QuotaViolated");
        assert!(ledger.release(TenantId(0), 60).is_ok());
        assert_eq!(ledger.committed(), 0);
        assert_eq!(ledger.active(), 0);
    }

    #[test]
    fn fingerprint_is_stable_and_input_sensitive() {
        let a = two_tenant_mix();
        assert_eq!(a.fingerprint(), two_tenant_mix().fingerprint());
        let mut b = two_tenant_mix();
        b.seed = 99;
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = two_tenant_mix();
        c.hir_mode = HirMode::Shared;
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn report_fairness_metrics() {
        let mut report = TenantReport {
            makespan: 2_000,
            ..TenantReport::default()
        };
        let mut a = TenantStats {
            arrival: 0,
            admitted: 0,
            ..TenantStats::default()
        };
        a.stats.cycles = 1_000;
        a.stats.instructions = 4_000;
        let mut b = TenantStats {
            arrival: 0,
            admitted: 1_000,
            ..TenantStats::default()
        };
        b.stats.cycles = 1_000;
        b.stats.instructions = 2_000;
        report.tenants = vec![a, b];
        assert!((report.p99_slowdown() - 2.0).abs() < 1e-12);
        assert!((report.throughput() - 3_000.0).abs() < 1e-12);
        assert_eq!(TenantReport::default().p99_slowdown(), 0.0);
        assert_eq!(TenantReport::default().throughput(), 0.0);
    }

    #[test]
    fn snapshot_validates_and_strict_parses() {
        let snap = TenantSnapshot {
            schema: TENANT_SNAPSHOT_SCHEMA,
            fingerprint: "x".into(),
            total: 2,
            completed: vec![TenantStats::default()],
        };
        assert!(snap.validate().is_ok());
        let wrong = TenantSnapshot {
            schema: 9,
            ..snap.clone()
        };
        assert_eq!(wrong.validate().unwrap_err().parameter(), "schema");
        let mut dup = snap.clone();
        dup.completed.push(TenantStats::default());
        assert_eq!(dup.validate().unwrap_err().parameter(), "completed");
        let text = snap.to_json().to_string();
        let back = TenantSnapshot::from_json_strict(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, snap);
        let bad = r#"{ "schema": 1, "fingerprnt": "x" }"#;
        let err = TenantSnapshot::from_json_strict(&Json::parse(bad).unwrap()).unwrap_err();
        assert!(err.to_string().contains("fingerprint"), "{err}");
    }

    #[test]
    fn schedule_report_roundtrip() {
        let report = TenantReport {
            fingerprint: "abc".into(),
            policy: "HPE".into(),
            hir_mode: "shared".into(),
            plan: "latency-storm".into(),
            fault_tenant: Some(1),
            rejected: 1,
            delayed: 2,
            makespan: 123,
            tenants: vec![TenantStats::default()],
        };
        let text = report.to_json().to_string();
        let back = TenantReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, report);
        // Sparse parses to default (fault_tenant None).
        let sparse = TenantReport::from_json(&Json::parse("{}").unwrap()).unwrap();
        assert_eq!(sparse, TenantReport::default());
    }
}
