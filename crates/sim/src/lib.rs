//! Event-driven GPU unified-memory simulator.
//!
//! This crate stands in for the paper's GPGPU-Sim + TLB/GMMU infrastructure
//! (Section III). It simulates, at page granularity:
//!
//! * SMs with multiple warps, each executing an op stream from a
//!   [`uvm_workloads::Trace`]; warps suspended on page faults while others
//!   continue (the replayable far-fault model of Zheng et al.),
//! * per-SM L1 TLBs and a shared L2 TLB with invalidation on eviction,
//! * a page-table walker with fixed walk latency; walk hits are reported to
//!   the eviction policy (ideal model) or recorded for HPE's HIR,
//! * a serialized CPU-side fault driver with the paper's 20 µs service
//!   time, fault coalescing, and policy-driven eviction,
//! * a PCIe transfer model charging HPE's hit-information flushes,
//! * driver-side recovery machinery: completion retry with exponential
//!   backoff, an HIR circuit breaker, approximate-LRU fallback eviction,
//!   and deterministic checkpoint/restore of paused runs (see
//!   [`Checkpoint`]),
//! * an opt-in runtime [`Sanitizer`] validating structural invariants
//!   (residency conservation, HIR/chain layout, recovery state machines)
//!   at a configurable cadence, reporting violations as typed
//!   [`uvm_types::SimError::InvariantViolated`] instead of panicking,
//! * an opt-in observation-only [`Profiler`] attributing every simulated
//!   cycle to a component x phase account, threading a span through each
//!   fault's lifecycle, and sampling a metrics time series on a cycle
//!   cadence (see [`ProfileReport`]); with the profiler attached the
//!   engine's [`uvm_types::SimStats`] stay byte-identical.
//!
//! # Examples
//!
//! ```
//! use uvm_policies::Lru;
//! use uvm_sim::Simulation;
//! use uvm_types::{Oversubscription, SimConfig};
//! use uvm_workloads::{registry, Trace};
//!
//! let cfg = SimConfig::scaled_default();
//! let app = registry::by_abbr("STN").unwrap();
//! let trace = Trace::build(app, cfg.n_sms * cfg.warps_per_sm, 4);
//! let capacity = Oversubscription::Rate75.capacity_pages(app.footprint_pages());
//! let outcome = Simulation::new(cfg, &trace, Lru::new(), capacity)
//!     .expect("valid configuration")
//!     .run()
//!     .expect("run completes");
//! assert!(outcome.stats.faults() >= app.footprint_pages());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod checkpoint;
mod engine;
mod explore;
mod faults;
mod memory;
mod observer;
mod profile;
mod recovery;
mod sanitizer;
mod tenant;
mod tlb;
mod trace;

pub use checkpoint::Checkpoint;
pub use engine::{SimOutcome, Simulation};
pub use explore::{
    shrink_plan, Counterexample, ExploreCase, ExploreReport, ExploreSpec, ReproCase, ALL_INVARIANTS,
};
pub use faults::{FaultFamily, FaultPlan, FaultWindow};
pub use memory::GpuMemory;
pub use observer::{EventLog, SimEvent, SimObserver};
pub use profile::{
    MetricsSample, MetricsSeries, ProfileConfig, ProfileReport, Profiler, SpanRecord, SpanSummary,
    DEFAULT_PROFILE_CADENCE,
};
pub use recovery::{AdaptiveBackoff, Backoff, FallbackVictim, RetryPolicy};
pub use sanitizer::{Sanitizer, DEFAULT_SANITIZER_CADENCE};
pub use tenant::{
    schedule, AdmissionControl, AdmissionOutcome, ArrivalProcess, HirMode, QuotaLedger,
    TenantAdmission, TenantMix, TenantReport, TenantSchedule, TenantSnapshot, TenantSpec,
    DEFAULT_LEASE_CYCLES, TENANT_SNAPSHOT_SCHEMA,
};
pub use tlb::Tlb;
pub use trace::{
    parse_jsonl, EventCounters, IntervalCollector, IntervalKey, IntervalRow, JsonlWriter,
    MultiObserver, TraceHistograms,
};

use uvm_policies::{EvictionPolicy, Ideal, NextUseOracle};
use uvm_types::{Oversubscription, SimConfig, SimError, SimStats};
use uvm_workloads::{App, Trace};

/// Default tile size used when distributing a global reference sequence
/// over warps (see [`Trace::build`]). Small enough that the concurrency
/// window (streams x tile) stays well below both a sweep of any registered
/// footprint and the reuse windows the workload models rely on.
pub const DEFAULT_TILE: u32 = 2;

/// Builds the trace for `app` matching `cfg`'s warp count.
pub fn trace_for(cfg: &SimConfig, app: &App) -> Trace {
    Trace::build(app, cfg.n_sms * cfg.warps_per_sm, DEFAULT_TILE)
}

/// Constructs the offline Ideal (Belady-MIN) policy for `trace`.
pub fn ideal_for(trace: &Trace) -> Ideal {
    Ideal::new(NextUseOracle::from_order(trace.round_robin_interleave()))
}

/// Runs `app` under `policy` at the given oversubscription rate and
/// returns the statistics (dropping the policy).
///
/// # Errors
///
/// Returns [`SimError`] if `cfg` is invalid or the run cannot complete
/// soundly (see [`Simulation::run`]).
pub fn run_app<P: EvictionPolicy>(
    cfg: &SimConfig,
    app: &App,
    rate: Oversubscription,
    policy: P,
) -> Result<SimStats, SimError> {
    let trace = trace_for(cfg, app);
    let capacity = rate.capacity_pages(app.footprint_pages());
    Ok(Simulation::new(cfg.clone(), &trace, policy, capacity)?
        .run()?
        .stats)
}
