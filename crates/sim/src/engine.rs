//! The discrete-event simulation engine.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::rc::Rc;

use uvm_policies::EvictionPolicy;
use uvm_types::{
    ConfigError, CycleAccount, PageId, SignalDisruption, SimConfig, SimError, SimStats,
};
use uvm_workloads::{Op, Trace};

use uvm_util::ToJson;

use crate::checkpoint::Checkpoint;
use crate::faults::{FaultPlan, FaultState};
use crate::memory::GpuMemory;
use crate::observer::{EventLog, SimEvent, SimObserver};
use crate::profile::{MetricsSample, ProfileReport, Profiler};
use crate::recovery::{CircuitBreaker, FallbackVictim, LossEstimator, LruShadow, RetryPolicy};
use crate::sanitizer::Sanitizer;
use crate::tlb::Tlb;

/// Window (in evictions) within which a re-fault on an evicted page counts
/// as a *wrong eviction* in the driver statistics. The paper's dynamic
/// adjustment uses two intervals (128 faults); the driver-level diagnostic
/// uses the same horizon.
const WRONG_EVICTION_WINDOW: usize = 128;

/// Base number of events the forward-progress watchdog tolerates without a
/// single op retiring or page landing (plus 100 per warp). Generously
/// above anything a healthy run produces between progress points, yet
/// small enough that an injected livelock is caught within a second.
const WATCHDOG_BASE_EVENTS: u64 = 100_000;

/// HIR flushes lost in transit before the driver's circuit breaker trips
/// and tells the GPU side to stop transferring flushes. Higher than HPE's
/// own two-consecutive-missed-flushes degradation trigger: the policy
/// degrades its eviction strategy first, the breaker then stops the
/// (still ongoing) wasted PCIe transfers.
const HIR_BREAKER_THRESHOLD: u32 = 3;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// A warp is ready to execute its next op (or replay a faulted one).
    WarpReady(usize),
    /// The driver finished servicing the fault on this page.
    DriverDone(PageId),
    /// The driver picks up the next queued fault. Scheduled *after* the
    /// waiter wake-ups of the previous fault so that replayed translations
    /// register with the policy before the next eviction decision — a
    /// just-migrated page must not be victimized before the warp that
    /// requested it even replays.
    DriverPickup,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    time: u64,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug)]
struct Warp {
    sm: usize,
    ops: Vec<Op>,
    cursor: usize,
    /// The current op already advanced the policy's access oracle; a replay
    /// after a fault must not advance it again.
    issued: bool,
}

/// Result of a simulation run: the statistics plus the policy itself, so
/// callers can inspect policy-specific state (e.g. HPE's classification or
/// strategy timeline).
#[derive(Debug)]
pub struct SimOutcome<P> {
    /// End-to-end statistics (policy counters already folded in).
    pub stats: SimStats,
    /// The policy, returned for post-run inspection.
    pub policy: P,
    /// The finalized profile when a profiler was installed (see
    /// [`Simulation::set_profiler`]); `None` on unprofiled runs.
    pub profile: Option<ProfileReport>,
    /// Whether the injected HIR channel outage was still active when the
    /// run ended (cross-run recovery checks need to distinguish "degraded
    /// because the channel is down" from "stuck degraded").
    pub hir_down: bool,
    /// Demand faults serviced since the HIR channel last came (or was)
    /// up — the recovery headroom a policy had to leave degraded mode.
    pub hir_clean_streak_faults: u64,
}

/// A configured simulation, consumed by [`Simulation::run`].
///
/// See the crate-level documentation for the modelled system and
/// `DESIGN.md` for how it maps to the paper's infrastructure.
#[derive(Debug)]
pub struct Simulation<P> {
    cfg: SimConfig,
    policy: P,
    memory: GpuMemory,
    l1: Vec<Tlb>,
    l2: Tlb,
    warps: Vec<Warp>,
    events: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
    now: u64,
    live_warps: usize,
    waiters: HashMap<PageId, Vec<usize>>,
    fault_queue: VecDeque<PageId>,
    in_service: Option<PageId>,
    /// Pages (demand + prefetched) migrating in the current service; they
    /// become resident together at `DriverDone`.
    in_flight: Vec<PageId>,
    /// Workload footprint, bounding prefetch candidates.
    footprint_pages: u64,
    memory_full_notified: bool,
    recent_evictions: VecDeque<PageId>,
    recent_counts: HashMap<PageId, u32>,
    observer: Option<Rc<RefCell<dyn SimObserver>>>,
    stats: SimStats,
    /// Active fault-injection state, if a plan was installed.
    faults: Option<FaultState>,
    /// Events handled since an op last retired or a page last landed.
    events_since_progress: u64,
    /// Watchdog threshold derived from the warp count.
    watchdog_limit: u64,
    /// Driver retry/backoff policy for lost completions; `None` keeps the
    /// plan's flat re-queue delay (and its livelock failure mode).
    retry: Option<RetryPolicy>,
    /// Backoff attempts made for the in-service fault's completion.
    completion_attempts: u32,
    /// Windowed completion-loss estimator, present only under
    /// [`RetryPolicy::Adaptive`]; fed one outcome per completion event.
    loss: Option<LossEstimator>,
    /// Demand faults serviced since the HIR channel last came (or was)
    /// up; resets while an injected outage holds the channel down.
    hir_clean_streak_faults: u64,
    /// Circuit breaker on the HIR channel (armed only under fault plans
    /// that lose flushes; otherwise it never records a failure).
    breaker: CircuitBreaker,
    /// Victim source for fallback evictions.
    fallback: FallbackVictim,
    /// Recency shadow feeding [`FallbackVictim::LruShadow`]; empty (and
    /// never touched) under the default min-page fallback.
    shadow: LruShadow,
    /// The `run_until` limit the run is currently paused at.
    paused_at: Option<u64>,
    /// Opt-in runtime invariant checker; `None` (the default) costs one
    /// branch per event and nothing else.
    sanitizer: Option<Sanitizer>,
    /// Opt-in cycle-attribution profiler; `None` (the default) costs one
    /// branch per event and nothing else. Observation-only: a profiled
    /// run's `SimStats` are byte-identical to an unprofiled run's.
    profiler: Option<Profiler>,
}

impl<P: EvictionPolicy> Simulation<P> {
    /// Builds a simulation of `trace` under `policy` with GPU memory of
    /// `capacity_pages`.
    ///
    /// Streams in `trace` are assigned round-robin to warps: stream `i`
    /// becomes warp `i % warps_per_sm` of SM `i / warps_per_sm`. A trace
    /// may have fewer streams than `n_sms * warps_per_sm`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `cfg` is invalid or the trace has more
    /// streams than the configuration has warps.
    pub fn new(
        cfg: SimConfig,
        trace: &Trace,
        policy: P,
        capacity_pages: u64,
    ) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let max_streams = (cfg.n_sms * cfg.warps_per_sm) as usize;
        if trace.streams().len() > max_streams {
            return Err(ConfigError::invalid(
                "trace.streams",
                "more streams than n_sms * warps_per_sm warps",
            ));
        }
        if capacity_pages == 0 {
            return Err(ConfigError::invalid("capacity_pages", "must be nonzero"));
        }
        let warps: Vec<Warp> = trace
            .streams()
            .iter()
            .enumerate()
            .map(|(i, ops)| Warp {
                sm: i / cfg.warps_per_sm as usize,
                ops: ops.clone(),
                cursor: 0,
                issued: false,
            })
            .collect();
        let l1 = (0..cfg.n_sms)
            .map(|_| Tlb::new(cfg.l1_tlb))
            .collect::<Vec<_>>();
        let l2 = Tlb::new(cfg.l2_tlb);
        let watchdog_limit = WATCHDOG_BASE_EVENTS + 100 * warps.len() as u64;
        let mut sim = Simulation {
            cfg,
            policy,
            memory: GpuMemory::new(capacity_pages),
            l1,
            l2,
            warps,
            events: BinaryHeap::new(),
            next_seq: 0,
            now: 0,
            live_warps: 0,
            waiters: HashMap::new(),
            fault_queue: VecDeque::new(),
            in_service: None,
            in_flight: Vec::new(),
            footprint_pages: trace.footprint_pages(),
            memory_full_notified: false,
            recent_evictions: VecDeque::new(),
            recent_counts: HashMap::new(),
            observer: None,
            stats: SimStats::default(),
            faults: None,
            events_since_progress: 0,
            watchdog_limit,
            retry: None,
            completion_attempts: 0,
            loss: None,
            hir_clean_streak_faults: 0,
            breaker: CircuitBreaker::new(HIR_BREAKER_THRESHOLD),
            fallback: FallbackVictim::default(),
            shadow: LruShadow::default(),
            paused_at: None,
            sanitizer: None,
            profiler: None,
        };
        for w in 0..sim.warps.len() {
            if !sim.warps[w].ops.is_empty() {
                sim.live_warps += 1;
                sim.schedule(0, EventKind::WarpReady(w));
            }
        }
        Ok(sim)
    }

    /// Installs a fault-injection plan. Must be called before
    /// [`Self::run`]; a [`FaultPlan::none`] plan leaves every statistic
    /// and event of the run byte-identical to not calling this at all.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the plan is invalid.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) -> Result<(), ConfigError> {
        plan.validate()?;
        self.faults = Some(FaultState::new(plan));
        Ok(())
    }

    /// Installs a driver retry/backoff policy for lost fault completions.
    ///
    /// Without one, a lost completion is re-queued after the fault plan's
    /// flat `retry_cycles` forever (an unbounded loss then livelocks into
    /// the watchdog's [`SimError::Stalled`]). With one, each consecutive
    /// loss backs off exponentially and the attempt cap surfaces as
    /// [`SimError::RetriesExhausted`] instead.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the policy is invalid.
    pub fn set_retry_policy(&mut self, rp: RetryPolicy) -> Result<(), ConfigError> {
        rp.validate()?;
        self.loss = rp.loss_window().map(LossEstimator::new);
        self.retry = Some(rp);
        Ok(())
    }

    /// Selects the victim source for fallback evictions (policy offered
    /// no victim, or its answer was dropped in transit). The default is
    /// [`FallbackVictim::MinPage`]; [`FallbackVictim::LruShadow`] makes
    /// the engine maintain a recency shadow and evict approximate-LRU.
    pub fn set_fallback_victim(&mut self, fallback: FallbackVictim) {
        self.fallback = fallback;
    }

    /// Installs the opt-in runtime sanitizer (see [`Sanitizer`]): every
    /// `cadence` retired events — and once more at end of run — the
    /// engine validates its structural invariants and reports the first
    /// violation as [`SimError::InvariantViolated`]. The checks are
    /// read-only, so a sanitized run's [`SimStats`] are byte-identical
    /// to an unsanitized run's.
    pub fn set_sanitizer(&mut self, sanitizer: Sanitizer) {
        self.sanitizer = Some(sanitizer);
    }

    /// The installed sanitizer, if any (for inspecting check counts).
    pub fn sanitizer(&self) -> Option<&Sanitizer> {
        self.sanitizer.as_ref()
    }

    /// Installs the opt-in cycle-attribution profiler (see
    /// [`Profiler`]): every simulated cycle is charged to a
    /// component×phase account, page faults get lifecycle spans, and the
    /// metrics registry samples engine state on the profiler's cadence.
    /// Observation-only: a profiled run's [`SimStats`] are byte-identical
    /// to an unprofiled run's, and the finalized [`ProfileReport`] comes
    /// back in [`SimOutcome::profile`].
    ///
    /// Profiler state is not captured by [`Self::checkpoint`]: a resumed
    /// run profiles only the cycles it executed itself.
    pub fn set_profiler(&mut self, mut profiler: Profiler) {
        profiler.set_capacity(self.memory.capacity());
        self.profiler = Some(profiler);
    }

    /// The installed profiler, if any (for inspecting span counts
    /// mid-run, between [`Self::run_until`] calls).
    pub fn profiler(&self) -> Option<&Profiler> {
        self.profiler.as_ref()
    }

    /// Runs the simulation to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the run cannot complete soundly: the
    /// policy offered a non-resident victim, residency accounting would
    /// overflow, the forward-progress watchdog detected a livelock
    /// ([`SimError::Stalled`]), the driver's retry policy gave up on a
    /// completion ([`SimError::RetriesExhausted`]), or warps deadlocked
    /// with an empty event queue. A policy offering *no* victim while
    /// memory is full is tolerated: the engine evicts a fallback victim
    /// itself and counts it in `stats.resilience.fallback_victims`.
    pub fn run(self) -> Result<SimOutcome<P>, SimError> {
        self.finish()
    }

    /// Processes every event with `time <= limit`, then pauses.
    ///
    /// Returns `Ok(true)` when the event queue drained (the run is
    /// complete; call [`Self::finish`]) and `Ok(false)` when the run
    /// paused at the limit — the state is then stable and
    /// [`Self::checkpoint`] captures it.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Self::run`], minus the deadlock check
    /// (which only applies to a drained queue at completion).
    pub fn run_until(&mut self, limit: u64) -> Result<bool, SimError> {
        while let Some(&Reverse(ev)) = self.events.peek() {
            if ev.time > limit {
                self.paused_at = Some(limit);
                return Ok(false);
            }
            self.events.pop();
            debug_assert!(ev.time >= self.now, "time went backwards");
            self.now = ev.time;
            if self.now > self.stats.cycles {
                self.stats.cycles = self.now;
            }
            self.events_since_progress += 1;
            if self.events_since_progress > self.watchdog_limit {
                return Err(SimError::Stalled {
                    cycle: self.now,
                    in_flight: self.in_flight.len() as u64,
                });
            }
            // Metrics registry: engine state is constant between events,
            // so crossed cadence boundaries sample the pre-event state.
            let profile_sample_due = self
                .profiler
                .as_ref()
                .is_some_and(|p| p.sample_due(self.now));
            if profile_sample_due {
                self.record_profile_sample();
            }
            match ev.kind {
                EventKind::WarpReady(w) => self.step_warp(w)?,
                EventKind::DriverDone(page) => self.driver_done(page)?,
                EventKind::DriverPickup => self.pickup_next_fault()?,
            }
            let sanitize_due = match &mut self.sanitizer {
                Some(s) => s.tick(),
                None => false,
            };
            if sanitize_due {
                self.sanitize_check()?;
            }
        }
        self.paused_at = None;
        Ok(true)
    }

    /// Handles a fault-completion signal, routing injected losses through
    /// the retry policy (if installed) or the plan's flat re-queue delay.
    fn driver_done(&mut self, page: PageId) -> Result<(), SimError> {
        // An injected lossy completion channel may swallow the signal; the
        // driver retries until it gets through — or, without a retry
        // policy, never does, and the watchdog reports the livelock.
        let lost = match &mut self.faults {
            Some(fs) => fs.completion_lost(self.now, &mut self.stats.resilience),
            None => None,
        };
        // The adaptive estimator observes every completion outcome —
        // delivered or lost — so its loss rate tracks the channel, not
        // just the retries.
        if let Some(est) = self.loss.as_mut() {
            est.record(lost.is_some());
        }
        match lost {
            Some(plan_delay) => match self.retry {
                Some(rp) => {
                    self.completion_attempts += 1;
                    if self.completion_attempts >= rp.max_attempts() {
                        return Err(SimError::RetriesExhausted {
                            page,
                            cycle: self.now,
                            attempts: self.completion_attempts,
                        });
                    }
                    let delay = match (rp, &self.loss) {
                        (RetryPolicy::Adaptive(a), Some(est)) => {
                            a.delay_for(self.completion_attempts, est.lost(), est.observed())
                        }
                        _ => rp.delay_for(self.completion_attempts),
                    };
                    self.stats.resilience.retry_attempts += 1;
                    self.stats.resilience.retry_backoff_cycles += delay;
                    if let Some(prof) = self.profiler.as_mut() {
                        prof.note_retry(page, delay);
                    }
                    self.schedule(self.now + delay, EventKind::DriverDone(page));
                }
                None => {
                    if let Some(prof) = self.profiler.as_mut() {
                        prof.note_retry(page, plan_delay);
                    }
                    self.schedule(self.now + plan_delay, EventKind::DriverDone(page));
                }
            },
            None => {
                self.completion_attempts = 0;
                self.finish_fault(page)?;
            }
        }
        Ok(())
    }

    /// Drains any remaining events and folds the final statistics.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Self::run`].
    pub fn finish(mut self) -> Result<SimOutcome<P>, SimError> {
        self.run_until(u64::MAX)?;
        if self.live_warps > 0 {
            return Err(SimError::Deadlock {
                cycle: self.now,
                blocked_warps: self.live_warps as u64,
            });
        }
        // Final sanitizer pass regardless of cadence phase, so a
        // corruption in the run's tail cannot slip out unchecked.
        if let Some(s) = &mut self.sanitizer {
            s.note_final_check();
        }
        if self.sanitizer.is_some() {
            self.sanitize_check()?;
        }
        self.stats.policy = self.policy.stats();
        // Finalize the profile last: `stats.cycles` is now the run's
        // total, which seeds the driver-idle residual (conservation).
        let profile = self
            .profiler
            .take()
            .map(|prof| prof.finalize(self.stats.cycles));
        Ok(SimOutcome {
            stats: self.stats,
            policy: self.policy,
            profile,
            hir_down: self.faults.as_ref().is_some_and(|fs| fs.hir_down),
            hir_clean_streak_faults: self.hir_clean_streak_faults,
        })
    }

    /// Feeds the metrics registry one snapshot of engine state for every
    /// cadence boundary at or before `now`. Read-only on engine state.
    fn record_profile_sample(&mut self) {
        let snapshot = MetricsSample {
            cycle: 0, // stamped per boundary by the profiler
            resident_pages: self.memory.len(),
            fault_backlog: self.fault_queue.len() as u64 + u64::from(self.in_service.is_some()),
            in_flight: self.in_flight.len() as u64,
            live_warps: self.live_warps as u64,
            hir_fill: self.policy.hir_fill(),
            degraded: self.policy.is_degraded(),
            faults_serviced: self.stats.driver.faults_serviced,
            evictions: self.stats.driver.evictions,
        };
        if let Some(prof) = self.profiler.as_mut() {
            prof.record_samples(self.now, snapshot);
        }
    }

    /// Snapshots the paused run (see [`Checkpoint`] for what is captured
    /// and why that is sufficient under the determinism contract).
    /// Meaningful after [`Self::run_until`] returned `Ok(false)`.
    pub fn checkpoint(&self) -> Checkpoint {
        let (fault_rng, fault_lost_in_row) = match &self.faults {
            Some(fs) => {
                let (state, lost) = fs.fingerprint();
                (state.to_vec(), lost)
            }
            None => (Vec::new(), 0),
        };
        let (breaker_failures, breaker_open) = self.breaker.fingerprint();
        let (shadow_pages, shadow_clock) = self.shadow.fingerprint();
        let (loss_bits, loss_len) = self.loss.map_or((0, 0), |est| est.fingerprint());
        Checkpoint {
            cycle: self.paused_at.unwrap_or(self.now),
            now: self.now,
            stats: self.stats.clone(),
            fault_rng,
            fault_lost_in_row,
            hir_down: self.faults.as_ref().is_some_and(|fs| fs.hir_down),
            breaker_failures,
            breaker_open,
            completion_attempts: self.completion_attempts,
            next_seq: self.next_seq,
            live_warps: self.live_warps as u64,
            resident_pages: self.memory.len(),
            in_flight: self.in_flight.len() as u64,
            queue_len: self.fault_queue.len() as u64,
            shadow_pages,
            shadow_clock,
            loss_bits,
            loss_len,
        }
    }

    /// Fast-forwards this *freshly built* simulation to `ckpt` and
    /// verifies it reconstructed the identical machine. The simulation
    /// must have been constructed from the same inputs (config, trace,
    /// policy, capacity, fault plan, retry policy, fallback victim) as
    /// the run that took the snapshot; continue it afterwards with
    /// [`Self::run_until`] or [`Self::finish`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CheckpointDiverged`] when the replayed state
    /// does not byte-match the snapshot (the inputs differ), plus any
    /// failure mode of [`Self::run_until`].
    pub fn resume(&mut self, ckpt: &Checkpoint) -> Result<(), SimError> {
        self.run_until(ckpt.cycle)?;
        let replayed = self.checkpoint();
        if replayed.to_json().to_string() != ckpt.to_json().to_string() {
            return Err(SimError::CheckpointDiverged { cycle: ckpt.cycle });
        }
        Ok(())
    }

    /// Installs an observer receiving paging events in simulated-time
    /// order, and enables the policy's decision-event tracing (disabled
    /// runs pay nothing; see [`EvictionPolicy::set_tracing`]).
    pub fn set_observer(&mut self, observer: Rc<RefCell<dyn SimObserver>>) {
        self.observer = Some(observer);
        self.policy.set_tracing(true);
    }

    /// Attaches a fresh [`EventLog`] observer and returns a handle to it.
    pub fn attach_event_log(&mut self) -> Rc<RefCell<EventLog>> {
        let log = Rc::new(RefCell::new(EventLog::new()));
        self.set_observer(log.clone());
        log
    }

    fn emit(&self, event: SimEvent) {
        if let Some(obs) = &self.observer {
            obs.borrow_mut().on_event(event);
        }
    }

    /// Forwards the policy's buffered decision events, stamped with the
    /// current cycle, to the observer. Called after every policy
    /// interaction that can produce events.
    fn drain_policy_events(&mut self) {
        let Some(obs) = self.observer.clone() else {
            return;
        };
        let now = self.now;
        self.policy.drain_events(&mut |e| {
            obs.borrow_mut().on_event(SimEvent::from_policy(e, now));
        });
    }

    fn schedule(&mut self, time: u64, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(Reverse(Event { time, seq, kind }));
    }

    fn step_warp(&mut self, w: usize) -> Result<(), SimError> {
        let (sm, op, first_issue) = {
            let warp = &self.warps[w];
            let op = warp.ops[warp.cursor];
            (warp.sm, op, !warp.issued)
        };
        if first_issue {
            self.warps[w].issued = true;
            self.policy.on_access(op.page);
        } else if let Some(prof) = self.profiler.as_mut() {
            // Replay after a fault: the warp's stall ends at this step
            // (and may immediately re-begin if the page was re-evicted).
            prof.warp_resumed(w, self.now);
        }

        // Address translation.
        let mut walked = false;
        let mut latency = u64::from(self.l1[sm].latency());
        let translated = if self.l1[sm].lookup(op.page) {
            self.stats.tlb.l1_hits += 1;
            debug_assert!(
                self.memory.is_resident(op.page),
                "L1 TLB holds non-resident page {}",
                op.page
            );
            true
        } else {
            self.stats.tlb.l1_misses += 1;
            latency += u64::from(self.l2.latency());
            if self.l2.lookup(op.page) {
                self.stats.tlb.l2_hits += 1;
                debug_assert!(self.memory.is_resident(op.page));
                self.l1[sm].fill(op.page);
                true
            } else {
                self.stats.tlb.l2_misses += 1;
                latency += u64::from(self.cfg.page_walk_cycles);
                walked = true;
                self.stats.walks += 1;
                self.emit(SimEvent::PageWalk {
                    time: self.now,
                    page: op.page,
                    hit: self.memory.is_resident(op.page),
                });
                if self.memory.is_resident(op.page) {
                    self.stats.walk_hits += 1;
                    self.policy.on_walk_hit(op.page);
                    self.l2.fill(op.page);
                    self.l1[sm].fill(op.page);
                    true
                } else {
                    false
                }
            }
        };

        // SM-side overlay accounting: translation latency split into TLB
        // lookups and the page walk. Charged for faulting accesses too —
        // the walk is what discovered the fault.
        if let Some(prof) = self.profiler.as_mut() {
            let walk = if walked {
                u64::from(self.cfg.page_walk_cycles)
            } else {
                0
            };
            prof.charge(CycleAccount::SmTlb, latency - walk);
            if walked {
                prof.charge(CycleAccount::PageWalk, walk);
            }
        }

        if !translated {
            // Page fault: suspend this warp until the driver migrates the
            // page (replayable far-fault); other warps keep running.
            return self.raise_fault(op.page, w);
        }

        // The access completes.
        self.events_since_progress = 0;
        if self.fallback == FallbackVictim::LruShadow {
            self.shadow.touch(op.page);
        }
        self.warps[w].issued = false;
        self.warps[w].cursor += 1;
        self.stats.mem_accesses += 1;
        self.stats.instructions += 1 + u64::from(op.compute);
        if let Some(prof) = self.profiler.as_mut() {
            prof.charge(CycleAccount::SmMem, u64::from(self.cfg.mem_access_cycles));
            prof.charge(CycleAccount::SmCompute, u64::from(op.compute));
        }
        let done_at =
            self.now + latency + u64::from(self.cfg.mem_access_cycles) + u64::from(op.compute);
        if self.warps[w].cursor < self.warps[w].ops.len() {
            self.schedule(done_at, EventKind::WarpReady(w));
        } else {
            self.live_warps -= 1;
            if done_at > self.stats.cycles {
                self.stats.cycles = done_at;
            }
        }
        Ok(())
    }

    fn raise_fault(&mut self, page: PageId, warp: usize) -> Result<(), SimError> {
        match self.waiters.entry(page) {
            Entry::Occupied(mut e) => {
                // Fault already pending: coalesce.
                e.get_mut().push(warp);
                if let Some(prof) = self.profiler.as_mut() {
                    prof.note_coalesce(page);
                    prof.warp_stalled(warp, self.now);
                }
            }
            Entry::Vacant(e) => {
                e.insert(vec![warp]);
                if let Some(prof) = self.profiler.as_mut() {
                    prof.open_span(page, self.now);
                    prof.warp_stalled(warp, self.now);
                }
                self.emit(SimEvent::FaultRaised {
                    time: self.now,
                    page,
                });
                if self.recent_counts.contains_key(&page) {
                    self.stats.driver.wrong_evictions += 1;
                    if let Some(prof) = self.profiler.as_mut() {
                        prof.mark_wrong_eviction(page);
                    }
                    if self.observer.is_some() {
                        // 1 = the most recent eviction. The linear scan
                        // only runs with an observer attached.
                        let distance = self
                            .recent_evictions
                            .iter()
                            .rev()
                            .position(|&p| p == page)
                            .map_or(0, |d| d as u64 + 1);
                        self.emit(SimEvent::WrongEviction {
                            time: self.now,
                            page,
                            refault_distance: distance,
                        });
                    }
                }
                if self.in_service.is_none() {
                    self.start_fault_service(page)?;
                } else {
                    self.fault_queue.push_back(page);
                }
            }
        }
        Ok(())
    }

    fn start_fault_service(&mut self, page: PageId) -> Result<(), SimError> {
        debug_assert!(self.in_service.is_none());
        debug_assert!(!self.memory.is_resident(page));
        self.in_service = Some(page);
        self.in_flight.clear();
        self.in_flight.push(page);

        // Fault batching: service additional queued demand faults in this
        // same window (real UVM drivers batch faults per interrupt). Never
        // migrate more pages at once than memory can hold.
        let batch_cap = u64::from(self.cfg.fault_batch).min(self.memory.capacity());
        while (self.in_flight.len() as u64) < batch_cap {
            let Some(next) = self.fault_queue.pop_front() else {
                break;
            };
            if self.memory.is_resident(next) {
                // Satisfied by an earlier prefetch while queued.
                if let Some(warps) = self.waiters.remove(&next) {
                    for w in warps {
                        self.schedule(self.now, EventKind::WarpReady(w));
                    }
                }
                continue;
            }
            if !self.in_flight.contains(&next) {
                self.in_flight.push(next);
            }
        }
        let demand_count = self.in_flight.len() as u64;
        // Every demand page in this batch leaves the queue stage now.
        if let Some(prof) = self.profiler.as_mut() {
            for &demand in &self.in_flight {
                prof.begin_service(demand, self.now);
            }
        }

        // Sequential prefetch: pull following contiguous pages (within the
        // workload's footprint) that are neither resident nor already
        // demanded by a queued fault.
        for i in 1..=u64::from(self.cfg.prefetch_pages) {
            // Never migrate more pages than memory can hold at once.
            if self.in_flight.len() as u64 >= self.memory.capacity() {
                break;
            }
            let candidate = PageId(page.0 + i);
            if candidate.0 < self.footprint_pages
                && !self.memory.is_resident(candidate)
                && !self.waiters.contains_key(&candidate)
            {
                self.in_flight.push(candidate);
                self.emit(SimEvent::PrefetchIssued {
                    time: self.now,
                    page: candidate,
                });
            }
        }

        let fault_num = self.stats.driver.faults_serviced;
        self.stats.driver.faults_serviced += demand_count;
        self.stats.driver.prefetched_pages += self.in_flight.len() as u64 - demand_count;

        // Injected GPU→driver channel outage: tell the policy when the
        // square wave flips, and count faults serviced while it is down.
        if let Some(fs) = &mut self.faults {
            if let Some(down) = fs.hir_transition(fault_num, self.now) {
                self.policy.on_disruption(if down {
                    SignalDisruption::HirChannelDown
                } else {
                    SignalDisruption::HirChannelUp
                });
                if !down && self.breaker.reset() {
                    // Channel restored: close the breaker so the GPU side
                    // resumes paying for flush transfers.
                    self.policy
                        .on_disruption(SignalDisruption::HirCircuitClosed);
                }
            }
            if fs.hir_down {
                self.stats.resilience.faults_during_hir_outage += demand_count;
            }
            // Injected partial outage: this window's HIR flush will arrive
            // late. Announced before faults are serviced so the policy can
            // divert the flush instead of applying it inline.
            if let Some(delay) = fs.flush_delay(self.now, &mut self.stats.resilience) {
                self.policy
                    .on_disruption(SignalDisruption::HirFlushDelayed { faults: delay });
            }
        }
        // Recovery headroom: faults serviced with the channel up are the
        // opportunity a degraded policy had to recover (see
        // [`SimOutcome::hir_clean_streak_faults`]).
        if self.faults.as_ref().is_some_and(|fs| fs.hir_down) {
            self.hir_clean_streak_faults = 0;
        } else {
            self.hir_clean_streak_faults += demand_count;
        }

        // Free enough frames for every migrating page.
        let needed = (self.memory.len() + self.in_flight.len() as u64)
            .saturating_sub(self.memory.capacity());
        for _ in 0..needed {
            // Injected victim-notification drop: the policy's answer is
            // lost in transit, so the driver acts as if none was offered.
            let dropped = match &mut self.faults {
                Some(fs) => fs.victim_dropped(self.now, &mut self.stats.resilience),
                None => false,
            };
            let victim = match self.policy.select_victim() {
                Some(v) if !dropped => {
                    if self.memory.remove(v) {
                        v
                    } else if self.faults.as_ref().is_some_and(|fs| fs.drops_victims()) {
                        // An earlier dropped notification desynced the
                        // policy's residency view (it forgot a page that
                        // was never evicted, and never learned about the
                        // fallback eviction that replaced it). Under a
                        // victim-dropping plan a stale offer is an expected
                        // consequence of the injection, so the driver
                        // tolerates it and falls back; on clean runs it
                        // stays a hard policy-bug error.
                        self.evict_fallback()?
                    } else {
                        return Err(SimError::NonResidentVictim {
                            page: v,
                            cycle: self.now,
                        });
                    }
                }
                _ => {
                    // No victim arrived — the policy believes nothing is
                    // resident, or its answer was dropped in transit.
                    // Evict a fallback victim rather than aborting the run.
                    self.evict_fallback()?
                }
            };
            if self.fallback == FallbackVictim::LruShadow {
                self.shadow.remove(victim);
            }
            for l1 in &mut self.l1 {
                l1.invalidate(victim);
            }
            self.l2.invalidate(victim);
            self.stats.driver.evictions += 1;
            self.remember_eviction(victim);
            // VictimSelected (from the policy's buffer) precedes the
            // Eviction it caused.
            self.drain_policy_events();
            self.emit(SimEvent::Eviction {
                time: self.now,
                page: victim,
            });
        }

        let mut outcome = uvm_policies::FaultOutcome::default();
        for (i, &p) in self.in_flight.clone().iter().enumerate() {
            // Batched demand faults get distinct fault numbers; prefetched
            // pages ride on the last demand number.
            let n = fault_num + (i as u64).min(demand_count - 1);
            let o = self.policy.on_fault(p, n);
            outcome.transfer_bytes += o.transfer_bytes;
            outcome.driver_busy_cycles += o.driver_busy_cycles;
            outcome.lost_flushes += o.lost_flushes;
            outcome.wasted_transfer_bytes += o.wasted_transfer_bytes;
        }
        // StrategySwitch / HirFlush events raised inside on_fault.
        self.drain_policy_events();
        // HIR flushes sent into a dead channel: account the wasted PCIe
        // transfer and feed the circuit breaker, which eventually tells
        // the GPU side to stop paying for flushes that never arrive.
        if outcome.lost_flushes > 0 {
            self.stats.resilience.hir_flushes_lost += u64::from(outcome.lost_flushes);
            self.stats.resilience.wasted_flush_cycles +=
                self.cfg.pcie_transfer_cycles(outcome.wasted_transfer_bytes);
            for _ in 0..outcome.lost_flushes {
                if self.breaker.record_failure() {
                    self.stats.resilience.circuit_breaker_trips += 1;
                    self.policy.on_disruption(SignalDisruption::HirCircuitOpen);
                    self.drain_policy_events();
                }
            }
        }
        // Injected corrupted fault report: a spurious wrong-eviction signal
        // reaches the policy's adjustment machinery.
        if let Some(fs) = &mut self.faults {
            if fs.spurious_wrong_eviction(self.now, &mut self.stats.resilience) {
                self.policy
                    .on_disruption(SignalDisruption::SpuriousWrongEviction { fault_num });
                self.drain_policy_events();
            }
        }
        // Prefetched pages each pay their own PCIe transfer. Wasted flush
        // bytes are on the critical path too — the GPU side sent them
        // before learning the channel was dead.
        let prefetch_bytes = (self.in_flight.len() as u64 - 1) * uvm_types::PAGE_SIZE;
        let mut transfer = self.cfg.pcie_transfer_cycles(
            outcome.transfer_bytes + outcome.wasted_transfer_bytes + prefetch_bytes,
        );
        let mut service = self.cfg.fault_service_cycles();
        if let Some(fs) = &mut self.faults {
            (service, transfer) =
                fs.perturb_service(service, transfer, self.now, &mut self.stats.resilience);
        }
        let duration = service + transfer;
        // Timeline attribution: the whole service window [now, now +
        // duration] splits exactly into the (possibly jittered) service
        // time, HIR flush transfer at the base PCIe rate, and the rest
        // of the (possibly congested) transfer — so the timeline
        // accounts conserve total cycles. Host-side eviction-decision
        // work overlaps the window (Section V-C) and goes to overlay.
        if let Some(prof) = self.profiler.as_mut() {
            let flush = self
                .cfg
                .pcie_transfer_cycles(outcome.transfer_bytes + outcome.wasted_transfer_bytes)
                .min(transfer);
            prof.charge(CycleAccount::FaultService, service);
            prof.charge(CycleAccount::HirFlush, flush);
            prof.charge(CycleAccount::PcieTransfer, transfer - flush);
            prof.charge(CycleAccount::EvictionDecision, outcome.driver_busy_cycles);
        }
        self.stats.driver.busy_cycles += duration + outcome.driver_busy_cycles;
        self.stats.driver.hit_transfer_cycles +=
            self.cfg.pcie_transfer_cycles(outcome.transfer_bytes);
        self.schedule(self.now + duration, EventKind::DriverDone(page));
        Ok(())
    }

    fn finish_fault(&mut self, page: PageId) -> Result<(), SimError> {
        debug_assert_eq!(self.in_service, Some(page));
        self.in_service = None;
        self.events_since_progress = 0;
        for p in std::mem::take(&mut self.in_flight) {
            if self.memory.insert(p).is_err() {
                return Err(SimError::ResidencyOverflow {
                    page: p,
                    cycle: self.now,
                });
            }
            if self.fallback == FallbackVictim::LruShadow {
                self.shadow.touch(p);
            }
            if let Some(prof) = self.profiler.as_mut() {
                prof.close_span(p, self.now);
            }
            self.emit(SimEvent::FaultServiced {
                time: self.now,
                page: p,
            });
            if let Some(warps) = self.waiters.remove(&p) {
                for w in warps {
                    self.schedule(self.now, EventKind::WarpReady(w));
                }
            }
        }
        if self.memory.is_full() && !self.memory_full_notified {
            self.memory_full_notified = true;
            self.policy.on_memory_full();
            self.drain_policy_events();
            self.emit(SimEvent::MemoryFull { time: self.now });
        }
        if !self.fault_queue.is_empty() {
            self.schedule(self.now, EventKind::DriverPickup);
        }
        Ok(())
    }

    fn pickup_next_fault(&mut self) -> Result<(), SimError> {
        if self.in_service.is_some() {
            return Ok(());
        }
        while let Some(next) = self.fault_queue.pop_front() {
            if self.memory.is_resident(next) {
                // Satisfied by a prefetch while queued: wake the waiters.
                if let Some(warps) = self.waiters.remove(&next) {
                    for w in warps {
                        self.schedule(self.now, EventKind::WarpReady(w));
                    }
                }
                continue;
            }
            self.start_fault_service(next)?;
            break;
        }
        Ok(())
    }

    /// Picks the engine-side fallback victim: approximate-LRU from the
    /// recency shadow when enabled (with a min-page safety net should the
    /// shadow be empty), else the lowest-numbered resident page.
    fn fallback_victim(&self) -> Option<PageId> {
        match self.fallback {
            FallbackVictim::MinPage => self.memory.min_resident(),
            FallbackVictim::LruShadow => self
                .shadow
                .lru()
                .filter(|&p| self.memory.is_resident(p))
                .or_else(|| self.memory.min_resident()),
        }
    }

    /// Evicts a fallback victim, accounting it and notifying the policy.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoVictimAvailable`] when nothing is resident.
    fn evict_fallback(&mut self) -> Result<PageId, SimError> {
        let Some(v) = self.fallback_victim() else {
            return Err(SimError::NoVictimAvailable { cycle: self.now });
        };
        self.memory.remove(v);
        self.stats.resilience.fallback_victims += 1;
        self.policy
            .on_disruption(SignalDisruption::ForcedEviction { page: v });
        Ok(v)
    }

    /// One sanitizer pass over the engine's structural invariants.
    /// Read-only by contract: nothing in the simulation (state, RNG,
    /// statistics) may change, so sanitized and unsanitized runs stay
    /// byte-identical.
    fn sanitize_check(&self) -> Result<(), SimError> {
        let cycle = self.now;
        let fail = |invariant: &'static str, detail: String| SimError::InvariantViolated {
            invariant,
            detail,
            cycle,
        };
        if self.memory.len() > self.memory.capacity() {
            return Err(fail(
                "residency-capacity",
                format!(
                    "{} pages resident in {} frames",
                    self.memory.len(),
                    self.memory.capacity()
                ),
            ));
        }
        // Pages are neither minted nor leaked: what is resident plus what
        // is mid-migration must equal what the driver ever moved in minus
        // what it evicted. Stated without subtraction so a corrupted
        // counter cannot hide behind saturation.
        let migrating = if self.in_service.is_some() {
            self.in_flight.len() as u64
        } else {
            0
        };
        let d = &self.stats.driver;
        if self.memory.len() + migrating + d.evictions != d.faults_serviced + d.prefetched_pages {
            return Err(fail(
                "residency-conservation",
                format!(
                    "resident {} + migrating {} + evicted {} != serviced {} + prefetched {}",
                    self.memory.len(),
                    migrating,
                    d.evictions,
                    d.faults_serviced,
                    d.prefetched_pages
                ),
            ));
        }
        if self.fallback == FallbackVictim::LruShadow {
            self.shadow
                .check_invariants(&|p| self.memory.is_resident(p))
                .map_err(|detail| fail("lru-shadow", detail))?;
        }
        self.breaker
            .check_invariants()
            .map_err(|detail| fail("circuit-breaker", detail))?;
        if let Some(est) = &self.loss {
            est.check_invariants()
                .map_err(|detail| fail("loss-estimator", detail))?;
        }
        self.policy
            .check_invariants()
            .map_err(|detail| fail("policy-structure", detail))?;
        Ok(())
    }

    fn remember_eviction(&mut self, page: PageId) {
        self.recent_evictions.push_back(page);
        *self.recent_counts.entry(page).or_insert(0) += 1;
        if self.recent_evictions.len() > WRONG_EVICTION_WINDOW {
            if let Some(old) = self.recent_evictions.pop_front() {
                if let Some(c) = self.recent_counts.get_mut(&old) {
                    *c -= 1;
                    if *c == 0 {
                        self.recent_counts.remove(&old);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::Backoff;
    use crate::{ideal_for, trace_for, ProfileConfig};
    use uvm_policies::{Lru, RandomPolicy};
    use uvm_types::Oversubscription;
    use uvm_workloads::registry;

    fn tiny_cfg(n_sms: u32, warps: u32) -> SimConfig {
        SimConfig::builder()
            .n_sms(n_sms)
            .warps_per_sm(warps)
            .l1_tlb(uvm_types::TlbConfig {
                entries: 4,
                ways: 4,
                latency_cycles: 1,
            })
            .l2_tlb(uvm_types::TlbConfig {
                entries: 8,
                ways: 4,
                latency_cycles: 10,
            })
            .build()
            .unwrap()
    }

    fn run_lru(global: &[u64], footprint: u64, capacity: u64, streams: u32) -> SimStats {
        let cfg = tiny_cfg(streams, 1);
        let trace = Trace::from_global(global, footprint, 2, streams, 4);
        Simulation::new(cfg, &trace, Lru::new(), capacity)
            .unwrap()
            .run()
            .unwrap()
            .stats
    }

    #[test]
    fn unconstrained_memory_faults_once_per_page() {
        let global: Vec<u64> = (0..50).chain(0..50).collect();
        let stats = run_lru(&global, 50, 64, 2);
        assert_eq!(stats.faults(), 50);
        assert_eq!(stats.evictions(), 0);
        assert_eq!(stats.mem_accesses, 100);
        assert!(stats.cycles > 0);
        assert!(stats.ipc() > 0.0);
    }

    #[test]
    fn cyclic_sweep_under_lru_thrashes() {
        // 40 pages, capacity 30, 4 sweeps: after the first sweep every
        // reference misses under LRU (reuse distance 40 > 30).
        let global: Vec<u64> = (0..40u64).cycle().take(160).collect();
        let stats = run_lru(&global, 40, 30, 1);
        assert_eq!(stats.faults(), 160);
        assert_eq!(stats.evictions(), 130);
        assert!(stats.driver.wrong_evictions > 0);
    }

    #[test]
    fn instructions_counted_once_despite_replays() {
        let global: Vec<u64> = (0..20u64).cycle().take(60).collect();
        let stats = run_lru(&global, 20, 10, 2);
        // 60 ops, compute 2 each -> exactly 180 instructions regardless of
        // how many faults were replayed.
        assert_eq!(stats.mem_accesses, 60);
        assert_eq!(stats.instructions, 180);
    }

    #[test]
    fn more_warps_overlap_faults() {
        // With one warp, every fault serializes against execution; with
        // eight warps the 20 us services overlap with other warps' work...
        let global: Vec<u64> = (0..400u64).collect();
        let serial = run_lru(&global, 400, 500, 1);
        let parallel = run_lru(&global, 400, 500, 8);
        assert_eq!(serial.faults(), parallel.faults());
        assert!(
            parallel.cycles < serial.cycles,
            "parallel {} !< serial {}",
            parallel.cycles,
            serial.cycles
        );
    }

    #[test]
    fn fault_coalescing_services_each_page_once() {
        // All eight warps hammer the same few pages: each page must be
        // serviced exactly once even though many warps fault on it.
        let global: Vec<u64> = std::iter::repeat(0..4u64).flatten().take(64).collect();
        let cfg = tiny_cfg(2, 4);
        let trace = Trace::from_global(&global, 4, 0, 8, 1);
        let stats = Simulation::new(cfg, &trace, Lru::new(), 16)
            .unwrap()
            .run()
            .unwrap()
            .stats;
        assert_eq!(stats.faults(), 4);
    }

    #[test]
    fn driver_core_load_is_bounded() {
        let global: Vec<u64> = (0..60u64).cycle().take(240).collect();
        let stats = run_lru(&global, 60, 45, 4);
        let load = stats.driver.core_load(stats.cycles);
        assert!(load > 0.0 && load <= 1.0, "load {load}");
    }

    #[test]
    fn ideal_never_faults_more_than_lru_full_stack() {
        let cfg = SimConfig::scaled_default();
        for abbr in ["STN", "NW"] {
            let app = registry::by_abbr(abbr).unwrap();
            let trace = trace_for(&cfg, app);
            let capacity = Oversubscription::Rate75.capacity_pages(app.footprint_pages());
            let lru = Simulation::new(cfg.clone(), &trace, Lru::new(), capacity)
                .unwrap()
                .run()
                .unwrap()
                .stats;
            let ideal = Simulation::new(cfg.clone(), &trace, ideal_for(&trace), capacity)
                .unwrap()
                .run()
                .unwrap()
                .stats;
            assert!(
                ideal.faults() <= lru.faults(),
                "{abbr}: ideal {} > lru {}",
                ideal.faults(),
                lru.faults()
            );
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let app = registry::by_abbr("STN").unwrap();
        let cfg = SimConfig::scaled_default();
        let trace = trace_for(&cfg, app);
        let run = || {
            Simulation::new(cfg.clone(), &trace, RandomPolicy::seeded(5), 576)
                .unwrap()
                .run()
                .unwrap()
                .stats
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn rejects_too_many_streams() {
        let cfg = tiny_cfg(1, 1);
        let trace = Trace::from_global(&[0, 1], 2, 0, 2, 1);
        assert!(Simulation::new(cfg, &trace, Lru::new(), 4).is_err());
    }

    #[test]
    fn rejects_zero_capacity() {
        let cfg = tiny_cfg(1, 1);
        let trace = Trace::from_global(&[0], 1, 0, 1, 1);
        assert!(Simulation::new(cfg, &trace, Lru::new(), 0).is_err());
    }

    #[test]
    fn tlb_stats_accumulate() {
        // Each page: one faulting walk + one replay walk that hits and
        // fills the TLBs; re-touches within TLB reach are L1 hits.
        let global: Vec<u64> = vec![0, 0, 0, 1, 1, 1];
        let stats = run_lru(&global, 2, 4, 1);
        assert_eq!(stats.walks, 4);
        assert_eq!(stats.walk_hits, 2);
        assert_eq!(stats.tlb.l1_hits, 4);
    }

    #[test]
    fn event_log_observer_records_timeline() {
        let global: Vec<u64> = (0..12u64).cycle().take(36).collect();
        let cfg = tiny_cfg(2, 1);
        let trace = Trace::from_global(&global, 12, 0, 2, 3);
        let mut sim = Simulation::new(cfg, &trace, Lru::new(), 8).unwrap();
        let log = sim.attach_event_log();
        let stats = sim.run().unwrap().stats;
        let log = log.borrow();
        assert_eq!(log.fault_count() as u64, stats.faults());
        assert_eq!(log.eviction_count() as u64, stats.evictions());
        // Events are in nondecreasing time order.
        let times: Vec<u64> = log.events().iter().map(|e| e.time()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        // MemoryFull appears exactly once.
        let fulls = log
            .events()
            .iter()
            .filter(|e| matches!(e, crate::SimEvent::MemoryFull { .. }))
            .count();
        assert_eq!(fulls, 1);
        // The fault-rate series accounts for every fault.
        let series = log.fault_rate_series(28_000);
        assert_eq!(series.iter().sum::<u64>(), stats.faults());
    }

    #[test]
    fn observer_sees_policy_decision_events() {
        use uvm_policies::Traced;

        let global: Vec<u64> = (0..24u64).cycle().take(96).collect();
        let cfg = tiny_cfg(2, 1);
        let trace = Trace::from_global(&global, 24, 0, 2, 3);
        let mut sim = Simulation::new(cfg, &trace, Traced::new(Lru::new()), 12).unwrap();
        let log = sim.attach_event_log();
        let stats = sim.run().unwrap().stats;
        let log = log.borrow();
        // Every eviction is preceded by the policy's VictimSelected for
        // the same page.
        let mut pending_victim = None;
        let mut victims = 0u64;
        for e in log.events() {
            match *e {
                SimEvent::VictimSelected { page, .. } => {
                    pending_victim = Some(page);
                    victims += 1;
                }
                SimEvent::Eviction { page, .. } => {
                    assert_eq!(pending_victim.take(), Some(page));
                }
                _ => {}
            }
        }
        assert_eq!(victims, stats.evictions());
        // Page walks were reported, including the faulting ones.
        let walks = log
            .events()
            .iter()
            .filter(|e| matches!(e, SimEvent::PageWalk { .. }))
            .count() as u64;
        assert_eq!(walks, stats.walks);
        // Wrong evictions carry a distance within the window.
        let wrong: Vec<u64> = log
            .events()
            .iter()
            .filter_map(|e| match *e {
                SimEvent::WrongEviction {
                    refault_distance, ..
                } => Some(refault_distance),
                _ => None,
            })
            .collect();
        assert_eq!(wrong.len() as u64, stats.driver.wrong_evictions);
        assert!(wrong
            .iter()
            .all(|&d| d >= 1 && d <= WRONG_EVICTION_WINDOW as u64));
    }

    #[test]
    fn attaching_observer_does_not_change_stats() {
        let global: Vec<u64> = (0..30u64).cycle().take(120).collect();
        let run = |observe: bool| {
            let cfg = tiny_cfg(2, 1);
            let trace = Trace::from_global(&global, 30, 0, 2, 3);
            let mut sim = Simulation::new(cfg, &trace, Lru::new(), 20).unwrap();
            if observe {
                let _ = sim.attach_event_log();
            }
            sim.run().unwrap().stats
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn prefetch_reduces_demand_faults_on_streaming() {
        let global: Vec<u64> = (0..200u64).collect();
        let trace = Trace::from_global(&global, 200, 2, 2, 4);
        let mut cfg = tiny_cfg(2, 1);
        let base = Simulation::new(cfg.clone(), &trace, Lru::new(), 250)
            .unwrap()
            .run()
            .unwrap()
            .stats;
        assert_eq!(base.faults(), 200);
        cfg.prefetch_pages = 4;
        let pf = Simulation::new(cfg, &trace, Lru::new(), 250)
            .unwrap()
            .run()
            .unwrap()
            .stats;
        assert!(
            pf.faults() < 80,
            "prefetch should absorb most demand faults, got {}",
            pf.faults()
        );
        assert!(pf.driver.prefetched_pages > 100);
        // All 200 pages became resident one way or the other.
        assert_eq!(pf.faults() + pf.driver.prefetched_pages, 200);
        assert!(pf.cycles < base.cycles, "fewer 20us services -> faster");
    }

    #[test]
    fn prefetch_respects_capacity_and_footprint() {
        // Footprint 20, capacity 8, heavy prefetch: residency accounting
        // must hold and prefetches never exceed the footprint.
        let global: Vec<u64> = (0..20u64).cycle().take(100).collect();
        let trace = Trace::from_global(&global, 20, 0, 2, 2);
        let mut cfg = tiny_cfg(2, 1);
        cfg.prefetch_pages = 8;
        let stats = Simulation::new(cfg, &trace, Lru::new(), 8)
            .unwrap()
            .run()
            .unwrap()
            .stats;
        let inserted = stats.faults() + stats.driver.prefetched_pages;
        let resident_end = inserted - stats.evictions();
        assert!(resident_end <= 8);
        assert!(resident_end >= 1);
    }

    #[test]
    fn fault_batching_amortizes_service_time() {
        // Eight warps streaming disjoint pages fill the fault queue; with
        // batching the driver clears several per 20 us window.
        let global: Vec<u64> = (0..320u64).collect();
        let trace = Trace::from_global(&global, 320, 0, 8, 1);
        let mut cfg = tiny_cfg(2, 4);
        let base = Simulation::new(cfg.clone(), &trace, Lru::new(), 400)
            .unwrap()
            .run()
            .unwrap()
            .stats;
        cfg.fault_batch = 8;
        let batched = Simulation::new(cfg, &trace, Lru::new(), 400)
            .unwrap()
            .run()
            .unwrap()
            .stats;
        // Same demand faults either way; far fewer service windows.
        assert_eq!(base.faults(), 320);
        assert_eq!(batched.faults(), 320);
        assert_eq!(batched.driver.prefetched_pages, 0);
        assert!(
            batched.cycles < base.cycles / 2,
            "batching should at least halve runtime: {} vs {}",
            batched.cycles,
            base.cycles
        );
    }

    #[test]
    fn fault_batch_larger_than_capacity_is_safe() {
        let global: Vec<u64> = (0..64u64).cycle().take(256).collect();
        let trace = Trace::from_global(&global, 64, 0, 8, 1);
        let mut cfg = tiny_cfg(2, 4);
        cfg.fault_batch = 256;
        let stats = Simulation::new(cfg, &trace, Lru::new(), 8)
            .unwrap()
            .run()
            .unwrap()
            .stats;
        let resident_end = stats.faults() - stats.evictions();
        assert!(resident_end <= 8);
    }

    /// A broken policy that never offers a victim: exercises the engine's
    /// deterministic fallback eviction.
    struct NoVictim;

    impl EvictionPolicy for NoVictim {
        fn name(&self) -> String {
            "NoVictim".to_string()
        }
        fn on_fault(&mut self, _page: PageId, _n: u64) -> uvm_policies::FaultOutcome {
            uvm_policies::FaultOutcome::default()
        }
        fn select_victim(&mut self) -> Option<PageId> {
            None
        }
    }

    #[test]
    fn fallback_victim_keeps_broken_policy_running() {
        let global: Vec<u64> = (0..20u64).cycle().take(80).collect();
        let cfg = tiny_cfg(2, 1);
        let trace = Trace::from_global(&global, 20, 0, 2, 2);
        let stats = Simulation::new(cfg, &trace, NoVictim, 8)
            .unwrap()
            .run()
            .expect("fallback keeps the run alive")
            .stats;
        assert!(stats.evictions() > 0);
        assert_eq!(stats.resilience.fallback_victims, stats.evictions());
        let resident_end = stats.faults() - stats.evictions();
        assert!(resident_end <= 8);
    }

    #[test]
    fn noop_fault_plan_changes_nothing() {
        let global: Vec<u64> = (0..40u64).cycle().take(160).collect();
        let run = |plan: Option<crate::FaultPlan>| {
            let cfg = tiny_cfg(2, 1);
            let trace = Trace::from_global(&global, 40, 0, 2, 3);
            let mut sim = Simulation::new(cfg, &trace, Lru::new(), 30).unwrap();
            if let Some(p) = plan {
                sim.set_fault_plan(p).unwrap();
            }
            sim.run().unwrap().stats
        };
        let clean = run(None);
        let noop = run(Some(crate::FaultPlan::none()));
        assert_eq!(clean, noop);
        assert!(!noop.resilience.any());
    }

    #[test]
    fn latency_chaos_completes_and_reports_injection() {
        let global: Vec<u64> = (0..40u64).cycle().take(160).collect();
        let cfg = tiny_cfg(2, 1);
        let trace = Trace::from_global(&global, 40, 0, 2, 3);
        let mut sim = Simulation::new(cfg, &trace, Lru::new(), 30).unwrap();
        sim.set_fault_plan(crate::FaultPlan::latency_storm(11))
            .unwrap();
        let stats = sim.run().expect("chaos run completes").stats;
        assert!(stats.resilience.any());
        assert!(stats.resilience.injected_delay_cycles > 0);
        // Latency chaos does not change what migrates or what is evicted.
        let resident_end = stats.faults() - stats.evictions();
        assert!(resident_end <= 30);
    }

    #[test]
    fn injected_livelock_is_reported_as_stalled() {
        let global: Vec<u64> = (0..10u64).collect();
        let cfg = tiny_cfg(1, 1);
        let trace = Trace::from_global(&global, 10, 0, 1, 1);
        let mut sim = Simulation::new(cfg, &trace, Lru::new(), 16).unwrap();
        sim.set_fault_plan(crate::FaultPlan::livelock(1)).unwrap();
        match sim.run() {
            Err(SimError::Stalled { in_flight, .. }) => assert!(in_flight >= 1),
            other => panic!("expected Stalled, got {other:?}"),
        }
    }

    #[test]
    fn retry_policy_turns_livelock_into_retries_exhausted() {
        let global: Vec<u64> = (0..10u64).collect();
        let cfg = tiny_cfg(1, 1);
        let trace = Trace::from_global(&global, 10, 0, 1, 1);
        let mut sim = Simulation::new(cfg, &trace, Lru::new(), 16).unwrap();
        sim.set_fault_plan(crate::FaultPlan::livelock(1)).unwrap();
        let rp = RetryPolicy::Fixed(Backoff {
            max_attempts: 5,
            ..Backoff::default()
        });
        sim.set_retry_policy(rp).unwrap();
        match sim.run() {
            Err(SimError::RetriesExhausted { attempts, .. }) => assert_eq!(attempts, 5),
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
    }

    #[test]
    fn retry_backoff_completes_bounded_loss_and_is_counted() {
        let global: Vec<u64> = (0..40u64).cycle().take(120).collect();
        let cfg = tiny_cfg(2, 1);
        let trace = Trace::from_global(&global, 40, 0, 2, 3);
        let mut sim = Simulation::new(cfg, &trace, Lru::new(), 30).unwrap();
        sim.set_fault_plan(crate::FaultPlan::completion_loss(7))
            .unwrap();
        sim.set_retry_policy(RetryPolicy::default()).unwrap();
        let stats = sim.run().expect("backoff still delivers").stats;
        assert!(stats.resilience.completions_lost > 0);
        assert_eq!(
            stats.resilience.retry_attempts, stats.resilience.completions_lost,
            "every loss goes through the backoff schedule"
        );
        assert!(stats.resilience.retry_backoff_cycles >= stats.resilience.retry_attempts * 2_000);
    }

    #[test]
    fn invalid_retry_policy_is_rejected() {
        let cfg = tiny_cfg(1, 1);
        let trace = Trace::from_global(&[0], 1, 0, 1, 1);
        let mut sim = Simulation::new(cfg, &trace, Lru::new(), 4).unwrap();
        let bad = RetryPolicy::Fixed(Backoff {
            max_attempts: 0,
            ..Backoff::default()
        });
        assert!(sim.set_retry_policy(bad).is_err());
    }

    #[test]
    fn adaptive_retry_backs_off_harder_under_loss() {
        let global: Vec<u64> = (0..40u64).cycle().take(120).collect();
        let run = |rp: RetryPolicy| {
            let cfg = tiny_cfg(2, 1);
            let trace = Trace::from_global(&global, 40, 0, 2, 3);
            let mut sim = Simulation::new(cfg, &trace, Lru::new(), 30).unwrap();
            sim.set_fault_plan(crate::FaultPlan::completion_loss(7))
                .unwrap();
            sim.set_retry_policy(rp).unwrap();
            sim.run().expect("bounded loss still completes").stats
        };
        let fixed = run(RetryPolicy::default());
        let adaptive = run(RetryPolicy::adaptive());
        assert!(fixed.resilience.completions_lost > 0);
        assert!(adaptive.resilience.completions_lost > 0);
        // Observed loss raises the adaptive base, so the mean backoff per
        // retry must exceed the fixed schedule's (both start at the same
        // base and cap).
        let mean = |s: &SimStats| s.resilience.retry_backoff_cycles / s.resilience.retry_attempts;
        assert!(
            mean(&adaptive) > mean(&fixed),
            "adaptive mean backoff {} !> fixed mean backoff {}",
            mean(&adaptive),
            mean(&fixed)
        );
        // Identical inputs replay identically under the adaptive estimator.
        assert_eq!(run(RetryPolicy::adaptive()), adaptive);
    }

    #[test]
    fn lru_shadow_fallback_tracks_recency() {
        // NoVictim forces every eviction through the fallback path. Under
        // the LRU shadow, re-touched pages must not be the next victims.
        let global: Vec<u64> = (0..20u64).cycle().take(80).collect();
        let run = |fallback: FallbackVictim| {
            let cfg = tiny_cfg(2, 1);
            let trace = Trace::from_global(&global, 20, 0, 2, 2);
            let mut sim = Simulation::new(cfg, &trace, NoVictim, 8).unwrap();
            sim.set_fallback_victim(fallback);
            sim.run().expect("fallback keeps the run alive").stats
        };
        let min_page = run(FallbackVictim::MinPage);
        let shadow = run(FallbackVictim::LruShadow);
        assert_eq!(
            min_page.resilience.fallback_victims,
            min_page.evictions(),
            "every eviction is a fallback"
        );
        assert_eq!(shadow.resilience.fallback_victims, shadow.evictions());
        // A cyclic sweep makes the two victim orders genuinely different.
        assert_ne!(
            min_page.faults(),
            shadow.faults(),
            "recency-aware fallback changes the eviction pattern"
        );
    }

    #[test]
    fn victim_drops_force_fallback_evictions_and_complete() {
        let global: Vec<u64> = (0..40u64).cycle().take(200).collect();
        let cfg = tiny_cfg(2, 1);
        let trace = Trace::from_global(&global, 40, 0, 2, 3);
        let mut sim = Simulation::new(cfg, &trace, Lru::new(), 30).unwrap();
        sim.set_fault_plan(crate::FaultPlan::victim_drop(3))
            .unwrap();
        let stats = sim.run().expect("dropped victims are tolerated").stats;
        assert!(stats.resilience.victims_dropped > 0, "injection fired");
        assert!(
            stats.resilience.fallback_victims >= stats.resilience.victims_dropped,
            "each drop (and each later stale offer) falls back"
        );
        let resident_end = stats.faults() - stats.evictions();
        assert!(resident_end <= 30);
    }

    #[test]
    fn checkpoint_resume_reproduces_straight_run() {
        let global: Vec<u64> = (0..40u64).cycle().take(200).collect();
        let build = || {
            let cfg = tiny_cfg(2, 1);
            let trace = Trace::from_global(&global, 40, 0, 2, 3);
            let mut sim = Simulation::new(cfg, &trace, Lru::new(), 30).unwrap();
            sim.set_fault_plan(crate::FaultPlan::latency_storm(11))
                .unwrap();
            sim
        };
        let straight = build().run().unwrap().stats;

        // Pause mid-run, snapshot, rebuild from the same inputs, resume.
        let mut first = build();
        let done = first.run_until(400_000).unwrap();
        assert!(!done, "pause point must fall inside the run");
        let ckpt = first.checkpoint();
        assert_eq!(ckpt.cycle, 400_000);

        let mut resumed = build();
        resumed
            .resume(&ckpt)
            .expect("same inputs replay identically");
        let stats = resumed.finish().unwrap().stats;
        assert_eq!(stats, straight, "resume must not change the run");
    }

    #[test]
    fn resume_with_different_inputs_reports_divergence() {
        let global: Vec<u64> = (0..40u64).cycle().take(200).collect();
        let build = |seed: u64| {
            let cfg = tiny_cfg(2, 1);
            let trace = Trace::from_global(&global, 40, 0, 2, 3);
            let mut sim = Simulation::new(cfg, &trace, Lru::new(), 30).unwrap();
            sim.set_fault_plan(crate::FaultPlan::latency_storm(seed))
                .unwrap();
            sim
        };
        let mut first = build(11);
        assert!(!first.run_until(400_000).unwrap());
        let ckpt = first.checkpoint();
        // Different fault-plan seed -> different RNG stream -> divergence.
        let mut other = build(12);
        match other.resume(&ckpt) {
            Err(SimError::CheckpointDiverged { cycle }) => assert_eq!(cycle, 400_000),
            other => panic!("expected CheckpointDiverged, got {other:?}"),
        }
    }

    #[test]
    fn run_until_past_end_completes_and_finish_matches_run() {
        let global: Vec<u64> = (0..20u64).cycle().take(60).collect();
        let cfg = tiny_cfg(2, 1);
        let trace = Trace::from_global(&global, 20, 0, 2, 2);
        let straight = Simulation::new(cfg.clone(), &trace, Lru::new(), 10)
            .unwrap()
            .run()
            .unwrap()
            .stats;
        let mut sim = Simulation::new(cfg, &trace, Lru::new(), 10).unwrap();
        assert!(sim.run_until(u64::MAX).unwrap(), "queue drains");
        let stats = sim.finish().unwrap().stats;
        assert_eq!(stats, straight);
    }

    #[test]
    fn bounded_completion_loss_still_completes() {
        let global: Vec<u64> = (0..40u64).cycle().take(120).collect();
        let cfg = tiny_cfg(2, 1);
        let trace = Trace::from_global(&global, 40, 0, 2, 3);
        let clean = Simulation::new(cfg.clone(), &trace, Lru::new(), 30)
            .unwrap()
            .run()
            .unwrap()
            .stats;
        let mut sim = Simulation::new(cfg, &trace, Lru::new(), 30).unwrap();
        sim.set_fault_plan(crate::FaultPlan::completion_loss(7))
            .unwrap();
        let lossy = sim.run().expect("bounded retries always deliver").stats;
        assert!(lossy.resilience.completions_lost > 0);
        assert_eq!(lossy.faults(), clean.faults(), "losses delay, not drop");
        assert!(lossy.cycles > clean.cycles, "each loss costs retry cycles");
    }

    #[test]
    fn replayed_access_hits_page_table_after_migration() {
        // One page, capacity ample: the faulting warp replays and the walk
        // then hits (counted as a walk hit, reported to the policy).
        let global: Vec<u64> = vec![0, 1];
        let stats = run_lru(&global, 2, 4, 1);
        assert_eq!(stats.faults(), 2);
        // Each fault's replay re-walks and hits.
        assert_eq!(stats.walk_hits, 2);
        assert_eq!(stats.walks, 4);
    }

    #[test]
    fn sanitizer_on_leaves_stats_byte_identical() {
        let global: Vec<u64> = (0..40u64).cycle().take(160).collect();
        let cfg = tiny_cfg(2, 1);
        let trace = Trace::from_global(&global, 40, 2, 2, 4);
        let plain = Simulation::new(cfg.clone(), &trace, Lru::new(), 30)
            .unwrap()
            .run()
            .unwrap()
            .stats;
        let mut sim = Simulation::new(cfg, &trace, Lru::new(), 30).unwrap();
        sim.set_sanitizer(Sanitizer::new(1)); // check after every event
        assert!(sim.run_until(u64::MAX).unwrap());
        let checks = sim.sanitizer().unwrap().checks_run();
        assert!(checks > 0, "cadence-1 sanitizer must have run");
        let sanitized = sim.finish().unwrap().stats;
        assert_eq!(
            sanitized.to_json().to_string(),
            plain.to_json().to_string(),
            "sanitizer must be read-only"
        );
    }

    #[test]
    fn sanitizer_runs_under_lru_shadow_fallback() {
        let global: Vec<u64> = (0..30u64).cycle().take(90).collect();
        let cfg = tiny_cfg(1, 1);
        let trace = Trace::from_global(&global, 30, 0, 1, 3);
        let mut sim = Simulation::new(cfg, &trace, Lru::new(), 20).unwrap();
        sim.set_fallback_victim(FallbackVictim::LruShadow);
        sim.set_sanitizer(Sanitizer::new(1));
        let stats = sim.run().unwrap().stats;
        assert!(stats.faults() > 0);
    }

    #[test]
    fn profiler_timeline_conserves_total_cycles() {
        let global: Vec<u64> = (0..40u64).cycle().take(160).collect();
        let cfg = tiny_cfg(2, 1);
        let trace = Trace::from_global(&global, 40, 2, 2, 4);
        let mut sim = Simulation::new(cfg, &trace, Lru::new(), 30).unwrap();
        sim.set_profiler(Profiler::new(ProfileConfig::new(50_000)));
        let outcome = sim.run().unwrap();
        let profile = outcome.profile.expect("profiler attached");
        assert_eq!(profile.total_cycles, outcome.stats.cycles);
        assert_eq!(
            profile.timeline_sum(),
            outcome.stats.cycles,
            "timeline accounts must partition the run exactly"
        );
        assert!(profile.account(CycleAccount::FaultService) > 0);
        // LRU moves no HIR bytes, and single-page demand batches carry no
        // prefetch transfer: both PCIe accounts stay empty here (HPE runs
        // populate them; see the bench-level conservation test).
        assert_eq!(profile.account(CycleAccount::PcieTransfer), 0);
        assert_eq!(profile.account(CycleAccount::HirFlush), 0);
        assert!(
            profile.driver_idle() > 0,
            "SM-side work between batches leaves the driver idle"
        );
        // Overlay accounts observe concurrent work without entering the sum.
        assert!(profile.account(CycleAccount::SmStall) > 0);
        assert!(profile.account(CycleAccount::SmTlb) > 0);
        assert!(profile.account(CycleAccount::PageWalk) > 0);
        // Span lifecycle: every raised fault opened a span and every span
        // closed; wrong evictions classify spans as re-faults.
        assert!(profile.spans.opened > 0);
        assert_eq!(profile.spans.completed, profile.spans.opened);
        assert_eq!(
            profile.spans.refault_spans, outcome.stats.driver.wrong_evictions,
            "span refault classification must match the engine's"
        );
        // The metrics registry sampled on cadence.
        assert!(!profile.series.samples.is_empty());
        assert_eq!(profile.series.cadence, 50_000);
    }

    #[test]
    fn profiler_on_leaves_stats_byte_identical() {
        let global: Vec<u64> = (0..40u64).cycle().take(160).collect();
        let cfg = tiny_cfg(2, 1);
        let trace = Trace::from_global(&global, 40, 2, 2, 4);
        let plain = Simulation::new(cfg.clone(), &trace, Lru::new(), 30)
            .unwrap()
            .run()
            .unwrap();
        assert!(plain.profile.is_none(), "no profiler unless attached");
        let mut sim = Simulation::new(cfg, &trace, Lru::new(), 30).unwrap();
        sim.set_profiler(Profiler::new(ProfileConfig::new(1)));
        let profiled = sim.run().unwrap();
        assert!(profiled.profile.is_some());
        assert_eq!(
            profiled.stats.to_json().to_string(),
            plain.stats.to_json().to_string(),
            "profiler must be observation-only"
        );
    }

    #[test]
    fn corrupted_residency_surfaces_typed_error_not_panic() {
        let global: Vec<u64> = (0..40u64).cycle().take(160).collect();
        let cfg = tiny_cfg(1, 1);
        let trace = Trace::from_global(&global, 40, 2, 1, 4);
        let mut sim = Simulation::new(cfg, &trace, Lru::new(), 30).unwrap();
        sim.set_sanitizer(Sanitizer::new(1));
        assert!(sim.run_until(u64::MAX).unwrap());
        assert!(!sim.memory.is_empty());
        // Corrupt the resident set behind the driver's accounting.
        let page = sim.memory.min_resident().unwrap();
        sim.memory.remove(page);
        match sim.finish() {
            Err(SimError::InvariantViolated {
                invariant, detail, ..
            }) => {
                assert_eq!(invariant, "residency-conservation");
                assert!(detail.contains("resident"), "detail {detail:?}");
            }
            other => panic!("expected InvariantViolated, got {other:?}"),
        }
    }
}
