//! Set-associative TLB with per-set LRU replacement and invalidation.

use uvm_types::{PageId, TlbConfig};

#[derive(Debug, Clone, Copy)]
struct Entry {
    page: PageId,
    stamp: u64,
}

/// A set-associative TLB.
///
/// Sets are indexed by `page mod sets`; within a set, replacement is LRU by
/// access stamp. Associativities are small (≤ 16 in every configuration in
/// the paper), so per-set linear scans are the fastest structure.
///
/// # Examples
///
/// ```
/// use uvm_sim::Tlb;
/// use uvm_types::{PageId, TlbConfig};
///
/// let mut tlb = Tlb::new(TlbConfig { entries: 4, ways: 2, latency_cycles: 1 });
/// assert!(!tlb.lookup(PageId(0)));
/// tlb.fill(PageId(0));
/// assert!(tlb.lookup(PageId(0)));
/// tlb.invalidate(PageId(0));
/// assert!(!tlb.lookup(PageId(0)));
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    cfg: TlbConfig,
    sets: Vec<Vec<Entry>>,
    clock: u64,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`TlbConfig::validate`]).
    pub fn new(cfg: TlbConfig) -> Self {
        cfg.validate().expect("valid TLB geometry"); // lint:allow(unwrap) — constructor contract, documented panic
        let n_sets = cfg.sets() as usize;
        Tlb {
            cfg,
            sets: vec![Vec::with_capacity(cfg.ways as usize); n_sets],
            clock: 0,
        }
    }

    /// Access latency in cycles.
    pub fn latency(&self) -> u32 {
        self.cfg.latency_cycles
    }

    fn set_index(&self, page: PageId) -> usize {
        (page.0 % self.cfg.sets() as u64) as usize
    }

    /// Looks up `page`, refreshing its recency on a hit.
    pub fn lookup(&mut self, page: PageId) -> bool {
        self.clock += 1;
        let clock = self.clock;
        let idx = self.set_index(page);
        for e in &mut self.sets[idx] {
            if e.page == page {
                e.stamp = clock;
                return true;
            }
        }
        false
    }

    /// Installs a translation for `page`, evicting the set's LRU entry if
    /// the set is full. A page already present only has its recency
    /// refreshed.
    pub fn fill(&mut self, page: PageId) {
        self.clock += 1;
        let clock = self.clock;
        let ways = self.cfg.ways as usize;
        let idx = self.set_index(page);
        let set = &mut self.sets[idx];
        if let Some(e) = set.iter_mut().find(|e| e.page == page) {
            e.stamp = clock;
            return;
        }
        if set.len() == ways {
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(i, _)| i)
                .expect("set nonempty"); // lint:allow(unwrap) — set is full on this branch
            set.swap_remove(lru);
        }
        set.push(Entry { page, stamp: clock });
    }

    /// Removes any translation for `page` (TLB shootdown on eviction).
    pub fn invalidate(&mut self, page: PageId) {
        let idx = self.set_index(page);
        self.sets[idx].retain(|e| e.page != page);
    }

    /// Number of valid entries (diagnostic accessor).
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb(entries: u32, ways: u32) -> Tlb {
        Tlb::new(TlbConfig {
            entries,
            ways,
            latency_cycles: 1,
        })
    }

    #[test]
    fn fill_then_hit() {
        let mut t = tlb(8, 2);
        for p in 0..8u64 {
            assert!(!t.lookup(PageId(p)));
            t.fill(PageId(p));
            assert!(t.lookup(PageId(p)));
        }
    }

    #[test]
    fn set_conflict_evicts_lru_within_set() {
        // 4 sets x 2 ways; pages 0, 4, 8 all map to set 0.
        let mut t = tlb(8, 2);
        t.fill(PageId(0));
        t.fill(PageId(4));
        t.lookup(PageId(0)); // 0 more recent than 4
        t.fill(PageId(8)); // evicts 4
        assert!(t.lookup(PageId(0)));
        assert!(!t.lookup(PageId(4)));
        assert!(t.lookup(PageId(8)));
    }

    #[test]
    fn capacity_sweep_thrashes() {
        // Sweeping 2x the TLB reach leaves only the second half resident.
        let mut t = tlb(16, 16);
        for p in 0..32u64 {
            t.fill(PageId(p));
        }
        assert_eq!(t.occupancy(), 16);
        for p in 0..16u64 {
            assert!(!t.lookup(PageId(p)), "page {p} should be evicted");
        }
        for p in 16..32u64 {
            assert!(t.lookup(PageId(p)), "page {p} should be present");
        }
    }

    #[test]
    fn invalidate_removes_entry() {
        let mut t = tlb(8, 4);
        t.fill(PageId(3));
        t.invalidate(PageId(3));
        assert!(!t.lookup(PageId(3)));
        // Invalidating an absent page is a no-op.
        t.invalidate(PageId(99));
        assert_eq!(t.occupancy(), 0);
    }

    #[test]
    fn double_fill_does_not_duplicate() {
        let mut t = tlb(4, 2);
        t.fill(PageId(1));
        t.fill(PageId(1));
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn fully_associative_uses_global_lru() {
        let mut t = tlb(4, 4);
        for p in 0..4u64 {
            t.fill(PageId(p));
        }
        t.lookup(PageId(0));
        t.fill(PageId(9)); // evicts 1, the LRU
        assert!(t.lookup(PageId(0)));
        assert!(!t.lookup(PageId(1)));
    }
}
