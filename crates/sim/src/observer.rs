//! Observation hooks: record what happens inside a simulation run.
//!
//! A [`SimObserver`] receives the paging-relevant events as they occur,
//! enabling timeline analyses (fault rate over time, eviction targets,
//! inter-fault distances) without touching the engine. [`EventLog`] is a
//! ready-made recording observer.

use uvm_types::{PageId, PolicyEvent, StrategyTag};
use uvm_util::{FromJson, Json, JsonError, ToJson};

/// One paging event, stamped with the simulated cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimEvent {
    /// A warp raised a page fault (first fault for this page; coalesced
    /// faults are not re-reported).
    FaultRaised {
        /// Simulated cycle.
        time: u64,
        /// Faulting page.
        page: PageId,
    },
    /// The driver finished migrating a page (it is now resident).
    FaultServiced {
        /// Simulated cycle.
        time: u64,
        /// Migrated page.
        page: PageId,
    },
    /// A page was evicted from GPU memory.
    Eviction {
        /// Simulated cycle.
        time: u64,
        /// Evicted page.
        page: PageId,
    },
    /// GPU memory reached capacity for the first time.
    MemoryFull {
        /// Simulated cycle.
        time: u64,
    },
    /// The page-table walker resolved a translation missing from both
    /// TLB levels.
    PageWalk {
        /// Simulated cycle.
        time: u64,
        /// Walked page.
        page: PageId,
        /// Whether the page was resident (a walk hit); `false` means the
        /// walk escalates to a page fault.
        hit: bool,
    },
    /// The driver migrated a page speculatively (sequential prefetch)
    /// alongside the demand fault being serviced.
    PrefetchIssued {
        /// Simulated cycle.
        time: u64,
        /// Prefetched page.
        page: PageId,
    },
    /// A fault was raised on a recently evicted page (the driver-level
    /// wrong-eviction diagnostic).
    WrongEviction {
        /// Simulated cycle.
        time: u64,
        /// Re-faulting page.
        page: PageId,
        /// Evictions between this page's eviction and its re-fault
        /// (1 = it was the most recent eviction).
        refault_distance: u64,
    },
    /// The policy picked an eviction victim
    /// ([`PolicyEvent::VictimSelected`], stamped).
    VictimSelected {
        /// Simulated cycle.
        time: u64,
        /// The page chosen for eviction.
        page: PageId,
        /// Strategy that made the choice.
        strategy: StrategyTag,
        /// Entry comparisons spent finding this victim.
        search_comparisons: u64,
        /// Faults elapsed since the victim became resident.
        victim_age: u64,
    },
    /// Dynamic adjustment switched the active eviction strategy
    /// ([`PolicyEvent::StrategySwitch`], stamped).
    StrategySwitch {
        /// Simulated cycle.
        time: u64,
        /// Strategy before the switch.
        from: StrategyTag,
        /// Strategy after the switch.
        to: StrategyTag,
        /// Classification ratio₁ in force at the switch.
        ratio1: f64,
        /// Classification ratio₂ in force at the switch.
        ratio2: f64,
        /// Global fault number of the switch.
        fault_num: u64,
    },
    /// The GPU-side HIR cache flushed its records to the driver
    /// ([`PolicyEvent::HirFlush`], stamped).
    HirFlush {
        /// Simulated cycle.
        time: u64,
        /// Records transferred in this flush.
        entries: u64,
        /// Insertions lost to way conflicts since the previous flush.
        dropped: u64,
    },
}

impl SimEvent {
    /// The simulated cycle of the event.
    pub fn time(&self) -> u64 {
        match *self {
            SimEvent::FaultRaised { time, .. }
            | SimEvent::FaultServiced { time, .. }
            | SimEvent::Eviction { time, .. }
            | SimEvent::MemoryFull { time }
            | SimEvent::PageWalk { time, .. }
            | SimEvent::PrefetchIssued { time, .. }
            | SimEvent::WrongEviction { time, .. }
            | SimEvent::VictimSelected { time, .. }
            | SimEvent::StrategySwitch { time, .. }
            | SimEvent::HirFlush { time, .. } => time,
        }
    }

    /// The event's kind as a stable string (the JSONL discriminator).
    pub fn kind(&self) -> &'static str {
        match self {
            SimEvent::FaultRaised { .. } => "FaultRaised",
            SimEvent::FaultServiced { .. } => "FaultServiced",
            SimEvent::Eviction { .. } => "Eviction",
            SimEvent::MemoryFull { .. } => "MemoryFull",
            SimEvent::PageWalk { .. } => "PageWalk",
            SimEvent::PrefetchIssued { .. } => "PrefetchIssued",
            SimEvent::WrongEviction { .. } => "WrongEviction",
            SimEvent::VictimSelected { .. } => "VictimSelected",
            SimEvent::StrategySwitch { .. } => "StrategySwitch",
            SimEvent::HirFlush { .. } => "HirFlush",
        }
    }

    /// Stamps a policy decision event with the simulated cycle.
    pub fn from_policy(event: PolicyEvent, time: u64) -> SimEvent {
        match event {
            PolicyEvent::VictimSelected {
                page,
                strategy,
                search_comparisons,
                victim_age,
            } => SimEvent::VictimSelected {
                time,
                page,
                strategy,
                search_comparisons,
                victim_age,
            },
            PolicyEvent::StrategySwitch {
                from,
                to,
                ratio1,
                ratio2,
                fault_num,
            } => SimEvent::StrategySwitch {
                time,
                from,
                to,
                ratio1,
                ratio2,
                fault_num,
            },
            PolicyEvent::HirFlush { entries, dropped } => SimEvent::HirFlush {
                time,
                entries,
                dropped,
            },
        }
    }
}

impl ToJson for SimEvent {
    fn to_json(&self) -> Json {
        let mut obj = uvm_util::json!({ "kind": self.kind(), "time": self.time() });
        match *self {
            SimEvent::FaultRaised { page, .. }
            | SimEvent::FaultServiced { page, .. }
            | SimEvent::Eviction { page, .. }
            | SimEvent::PrefetchIssued { page, .. } => {
                obj.insert("page", Json::UInt(page.0));
            }
            SimEvent::MemoryFull { .. } => {}
            SimEvent::PageWalk { page, hit, .. } => {
                obj.insert("page", Json::UInt(page.0));
                obj.insert("hit", Json::Bool(hit));
            }
            SimEvent::WrongEviction {
                page,
                refault_distance,
                ..
            } => {
                obj.insert("page", Json::UInt(page.0));
                obj.insert("refault_distance", Json::UInt(refault_distance));
            }
            SimEvent::VictimSelected {
                page,
                strategy,
                search_comparisons,
                victim_age,
                ..
            } => {
                obj.insert("page", Json::UInt(page.0));
                obj.insert("strategy", strategy.to_json());
                obj.insert("search_comparisons", Json::UInt(search_comparisons));
                obj.insert("victim_age", Json::UInt(victim_age));
            }
            SimEvent::StrategySwitch {
                from,
                to,
                ratio1,
                ratio2,
                fault_num,
                ..
            } => {
                obj.insert("from", from.to_json());
                obj.insert("to", to.to_json());
                obj.insert("ratio1", Json::Float(ratio1));
                obj.insert("ratio2", Json::Float(ratio2));
                obj.insert("fault_num", Json::UInt(fault_num));
            }
            SimEvent::HirFlush {
                entries, dropped, ..
            } => {
                obj.insert("entries", Json::UInt(entries));
                obj.insert("dropped", Json::UInt(dropped));
            }
        }
        obj
    }
}

impl FromJson for SimEvent {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let field = |k: &str| {
            v.get(k)
                .ok_or_else(|| JsonError::new(format!("missing field `{k}`")))
        };
        let num = |k: &str| {
            field(k)?
                .as_u64()
                .ok_or_else(|| JsonError::new(format!("field `{k}` must be an unsigned integer")))
        };
        let float = |k: &str| {
            field(k)?
                .as_f64()
                .ok_or_else(|| JsonError::new(format!("field `{k}` must be a number")))
        };
        let page = || Ok::<_, JsonError>(PageId(num("page")?));
        let time = num("time")?;
        match field("kind")?.as_str() {
            Some("FaultRaised") => Ok(SimEvent::FaultRaised {
                time,
                page: page()?,
            }),
            Some("FaultServiced") => Ok(SimEvent::FaultServiced {
                time,
                page: page()?,
            }),
            Some("Eviction") => Ok(SimEvent::Eviction {
                time,
                page: page()?,
            }),
            Some("MemoryFull") => Ok(SimEvent::MemoryFull { time }),
            Some("PageWalk") => Ok(SimEvent::PageWalk {
                time,
                page: page()?,
                hit: field("hit")?
                    .as_bool()
                    .ok_or_else(|| JsonError::new("field `hit` must be a bool"))?,
            }),
            Some("PrefetchIssued") => Ok(SimEvent::PrefetchIssued {
                time,
                page: page()?,
            }),
            Some("WrongEviction") => Ok(SimEvent::WrongEviction {
                time,
                page: page()?,
                refault_distance: num("refault_distance")?,
            }),
            Some("VictimSelected") => Ok(SimEvent::VictimSelected {
                time,
                page: page()?,
                strategy: StrategyTag::from_json(field("strategy")?)?,
                search_comparisons: num("search_comparisons")?,
                victim_age: num("victim_age")?,
            }),
            Some("StrategySwitch") => Ok(SimEvent::StrategySwitch {
                time,
                from: StrategyTag::from_json(field("from")?)?,
                to: StrategyTag::from_json(field("to")?)?,
                ratio1: float("ratio1")?,
                ratio2: float("ratio2")?,
                fault_num: num("fault_num")?,
            }),
            Some("HirFlush") => Ok(SimEvent::HirFlush {
                time,
                entries: num("entries")?,
                dropped: num("dropped")?,
            }),
            _ => Err(JsonError::new("unknown SimEvent kind")),
        }
    }
}

/// Receives simulation events.
///
/// The `Debug` supertrait keeps `Simulation` debuggable with an observer
/// attached.
pub trait SimObserver: std::fmt::Debug {
    /// Called for every paging event in simulated-time order.
    fn on_event(&mut self, event: SimEvent);
}

/// An observer that records every event.
///
/// # Examples
///
/// ```
/// use uvm_policies::Lru;
/// use uvm_sim::{EventLog, Simulation};
/// use uvm_types::SimConfig;
/// use uvm_workloads::Trace;
///
/// let cfg = SimConfig::builder().n_sms(1).warps_per_sm(1).build()?;
/// let trace = Trace::from_global(&[0, 1, 0], 2, 0, 1, 1);
/// let mut sim = Simulation::new(cfg, &trace, Lru::new(), 4)?;
/// let log = sim.attach_event_log();
/// sim.run()?;
/// let events = log.borrow();
/// assert_eq!(events.fault_count(), 2);
/// # Ok::<(), uvm_types::SimError>(())
/// ```
#[derive(Debug, Default)]
pub struct EventLog {
    events: Vec<SimEvent>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[SimEvent] {
        &self.events
    }

    /// Number of `FaultRaised` events.
    pub fn fault_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, SimEvent::FaultRaised { .. }))
            .count()
    }

    /// Number of `Eviction` events.
    pub fn eviction_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, SimEvent::Eviction { .. }))
            .count()
    }

    /// Number of `FaultServiced` events (demand + prefetched pages made
    /// resident).
    pub fn serviced_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, SimEvent::FaultServiced { .. }))
            .count()
    }

    /// Per-fault service latency: for every `FaultServiced` whose page has
    /// a pending `FaultRaised`, the cycles between the two, in service
    /// order. Prefetched pages (serviced without a raise) are skipped; a
    /// page that faults again after eviction matches its latest raise.
    pub fn service_latency_series(&self) -> Vec<(PageId, u64)> {
        let mut raised_at: std::collections::HashMap<PageId, u64> =
            std::collections::HashMap::new();
        let mut series = Vec::new();
        for e in &self.events {
            match *e {
                SimEvent::FaultRaised { time, page } => {
                    raised_at.insert(page, time);
                }
                SimEvent::FaultServiced { time, page } => {
                    if let Some(start) = raised_at.remove(&page) {
                        series.push((page, time.saturating_sub(start)));
                    }
                }
                _ => {}
            }
        }
        series
    }

    /// Fault counts per time bucket of `bucket_cycles` (fault-rate series).
    pub fn fault_rate_series(&self, bucket_cycles: u64) -> Vec<u64> {
        assert!(bucket_cycles > 0, "bucket_cycles must be nonzero");
        let mut series = Vec::new();
        for e in &self.events {
            if let SimEvent::FaultRaised { time, .. } = e {
                let bucket = (time / bucket_cycles) as usize;
                if bucket >= series.len() {
                    series.resize(bucket + 1, 0);
                }
                series[bucket] += 1;
            }
        }
        series
    }
}

impl SimObserver for EventLog {
    fn on_event(&mut self, event: SimEvent) {
        self.events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_log_counts_and_series() {
        let mut log = EventLog::new();
        log.on_event(SimEvent::FaultRaised {
            time: 5,
            page: PageId(1),
        });
        log.on_event(SimEvent::FaultServiced {
            time: 10,
            page: PageId(1),
        });
        log.on_event(SimEvent::Eviction {
            time: 12,
            page: PageId(0),
        });
        log.on_event(SimEvent::FaultRaised {
            time: 25,
            page: PageId(2),
        });
        assert_eq!(log.fault_count(), 2);
        assert_eq!(log.eviction_count(), 1);
        assert_eq!(log.fault_rate_series(10), vec![1, 0, 1]);
        assert_eq!(log.events().len(), 4);
        assert_eq!(log.events()[0].time(), 5);
    }

    #[test]
    #[should_panic(expected = "bucket_cycles must be nonzero")]
    fn zero_bucket_rejected() {
        EventLog::new().fault_rate_series(0);
    }

    #[test]
    fn service_latency_pairs_raise_with_service() {
        let mut log = EventLog::new();
        log.on_event(SimEvent::FaultRaised {
            time: 5,
            page: PageId(1),
        });
        log.on_event(SimEvent::FaultRaised {
            time: 7,
            page: PageId(2),
        });
        log.on_event(SimEvent::FaultServiced {
            time: 30,
            page: PageId(1),
        });
        // Prefetched page: serviced without a raise -> skipped.
        log.on_event(SimEvent::FaultServiced {
            time: 30,
            page: PageId(3),
        });
        log.on_event(SimEvent::FaultServiced {
            time: 55,
            page: PageId(2),
        });
        // Page 1 faults again after eviction: new raise, new latency.
        log.on_event(SimEvent::FaultRaised {
            time: 60,
            page: PageId(1),
        });
        log.on_event(SimEvent::FaultServiced {
            time: 90,
            page: PageId(1),
        });
        assert_eq!(log.serviced_count(), 4);
        assert_eq!(
            log.service_latency_series(),
            vec![(PageId(1), 25), (PageId(2), 48), (PageId(1), 30)]
        );
    }

    #[test]
    fn sim_events_roundtrip_through_json() {
        let events = [
            SimEvent::FaultRaised {
                time: 1,
                page: PageId(9),
            },
            SimEvent::FaultServiced {
                time: 2,
                page: PageId(9),
            },
            SimEvent::Eviction {
                time: 3,
                page: PageId(4),
            },
            SimEvent::MemoryFull { time: 4 },
            SimEvent::PageWalk {
                time: 5,
                page: PageId(7),
                hit: true,
            },
            SimEvent::PrefetchIssued {
                time: 6,
                page: PageId(10),
            },
            SimEvent::WrongEviction {
                time: 7,
                page: PageId(4),
                refault_distance: 12,
            },
            SimEvent::VictimSelected {
                time: 8,
                page: PageId(4),
                strategy: StrategyTag::MruC,
                search_comparisons: 5,
                victim_age: 90,
            },
            SimEvent::StrategySwitch {
                time: 9,
                from: StrategyTag::MruC,
                to: StrategyTag::Lru,
                ratio1: 0.4,
                ratio2: 2.5,
                fault_num: 200,
            },
            SimEvent::HirFlush {
                time: 10,
                entries: 14,
                dropped: 2,
            },
        ];
        for e in events {
            let j = e.to_json();
            assert_eq!(j["kind"].as_str(), Some(e.kind()));
            let back = SimEvent::from_json(&j).unwrap();
            assert_eq!(back, e);
            // And through the serialized text (the JSONL path).
            let reparsed = Json::parse(&j.to_string()).unwrap();
            assert_eq!(SimEvent::from_json(&reparsed).unwrap(), e);
        }
    }

    #[test]
    fn malformed_sim_event_rejected() {
        assert!(SimEvent::from_json(&Json::parse(r#"{"kind":"Nope","time":1}"#).unwrap()).is_err());
        assert!(SimEvent::from_json(&Json::parse(r#"{"time":1}"#).unwrap()).is_err());
        assert!(SimEvent::from_json(
            &Json::parse(r#"{"kind":"PageWalk","time":1,"page":2}"#).unwrap()
        )
        .is_err());
    }
}
