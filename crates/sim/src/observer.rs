//! Observation hooks: record what happens inside a simulation run.
//!
//! A [`SimObserver`] receives the paging-relevant events as they occur,
//! enabling timeline analyses (fault rate over time, eviction targets,
//! inter-fault distances) without touching the engine. [`EventLog`] is a
//! ready-made recording observer.

use uvm_types::PageId;

/// One paging event, stamped with the simulated cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// A warp raised a page fault (first fault for this page; coalesced
    /// faults are not re-reported).
    FaultRaised {
        /// Simulated cycle.
        time: u64,
        /// Faulting page.
        page: PageId,
    },
    /// The driver finished migrating a page (it is now resident).
    FaultServiced {
        /// Simulated cycle.
        time: u64,
        /// Migrated page.
        page: PageId,
    },
    /// A page was evicted from GPU memory.
    Eviction {
        /// Simulated cycle.
        time: u64,
        /// Evicted page.
        page: PageId,
    },
    /// GPU memory reached capacity for the first time.
    MemoryFull {
        /// Simulated cycle.
        time: u64,
    },
}

impl SimEvent {
    /// The simulated cycle of the event.
    pub fn time(&self) -> u64 {
        match *self {
            SimEvent::FaultRaised { time, .. }
            | SimEvent::FaultServiced { time, .. }
            | SimEvent::Eviction { time, .. }
            | SimEvent::MemoryFull { time } => time,
        }
    }
}

/// Receives simulation events.
///
/// The `Debug` supertrait keeps `Simulation` debuggable with an observer
/// attached.
pub trait SimObserver: std::fmt::Debug {
    /// Called for every paging event in simulated-time order.
    fn on_event(&mut self, event: SimEvent);
}

/// An observer that records every event.
///
/// # Examples
///
/// ```
/// use uvm_policies::Lru;
/// use uvm_sim::{EventLog, Simulation};
/// use uvm_types::SimConfig;
/// use uvm_workloads::Trace;
///
/// let cfg = SimConfig::builder().n_sms(1).warps_per_sm(1).build()?;
/// let trace = Trace::from_global(&[0, 1, 0], 2, 0, 1, 1);
/// let mut sim = Simulation::new(cfg, &trace, Lru::new(), 4)?;
/// let log = sim.attach_event_log();
/// sim.run();
/// let events = log.borrow();
/// assert_eq!(events.fault_count(), 2);
/// # Ok::<(), uvm_types::ConfigError>(())
/// ```
#[derive(Debug, Default)]
pub struct EventLog {
    events: Vec<SimEvent>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[SimEvent] {
        &self.events
    }

    /// Number of `FaultRaised` events.
    pub fn fault_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, SimEvent::FaultRaised { .. }))
            .count()
    }

    /// Number of `Eviction` events.
    pub fn eviction_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, SimEvent::Eviction { .. }))
            .count()
    }

    /// Fault counts per time bucket of `bucket_cycles` (fault-rate series).
    pub fn fault_rate_series(&self, bucket_cycles: u64) -> Vec<u64> {
        assert!(bucket_cycles > 0, "bucket_cycles must be nonzero");
        let mut series = Vec::new();
        for e in &self.events {
            if let SimEvent::FaultRaised { time, .. } = e {
                let bucket = (time / bucket_cycles) as usize;
                if bucket >= series.len() {
                    series.resize(bucket + 1, 0);
                }
                series[bucket] += 1;
            }
        }
        series
    }
}

impl SimObserver for EventLog {
    fn on_event(&mut self, event: SimEvent) {
        self.events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_log_counts_and_series() {
        let mut log = EventLog::new();
        log.on_event(SimEvent::FaultRaised {
            time: 5,
            page: PageId(1),
        });
        log.on_event(SimEvent::FaultServiced {
            time: 10,
            page: PageId(1),
        });
        log.on_event(SimEvent::Eviction {
            time: 12,
            page: PageId(0),
        });
        log.on_event(SimEvent::FaultRaised {
            time: 25,
            page: PageId(2),
        });
        assert_eq!(log.fault_count(), 2);
        assert_eq!(log.eviction_count(), 1);
        assert_eq!(log.fault_rate_series(10), vec![1, 0, 1]);
        assert_eq!(log.events().len(), 4);
        assert_eq!(log.events()[0].time(), 5);
    }

    #[test]
    #[should_panic(expected = "bucket_cycles must be nonzero")]
    fn zero_bucket_rejected() {
        EventLog::new().fault_rate_series(0);
    }
}
