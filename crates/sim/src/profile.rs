//! Opt-in cycle-attribution profiler, fault-lifecycle spans, and a
//! metrics time-series registry.
//!
//! The profiler answers the question the terminal-event tracing layer
//! (`trace.rs`) cannot: *where do the cycles go?* It has three
//! coordinated pieces, all observation-only (a profiled run's
//! [`uvm_types::SimStats`] are byte-identical to an unprofiled run's —
//! the same contract, and the same proof pattern, as the
//! [`crate::Sanitizer`]):
//!
//! 1. **Cycle attribution.** Every simulated cycle is charged to a
//!    component×phase account ([`CycleAccount`]). The *driver timeline*
//!    accounts (fault service, PCIe transfer, HIR flush, retry backoff,
//!    driver idle) partition the run exactly — their sum equals
//!    `SimStats::cycles`, asserted by [`ProfileReport::timeline_sum`] —
//!    because the driver services one fault batch at a time, so its busy
//!    windows never overlap. `driver_idle` is the residual: the
//!    dead-scannable cycles that motivate the event-queue engine core.
//!    *Overlay* accounts (SM stall/TLB/walk/DRAM/compute across all
//!    warps, host-side eviction decisions) measure concurrent work and
//!    deliberately stay out of the conservation sum.
//! 2. **Fault-lifecycle spans.** Each page fault opens a span
//!    ([`SpanRecord`]) at raise time, carrying a stable span id through
//!    queueing, service (walk + transfer + map) and completion.
//!    Per-stage latency histograms ([`SpanStage`]) come out of
//!    [`uvm_util::Histogram`] with p50/p99 estimates; wrong-eviction
//!    re-faults and retry/backoff cycles are attributed back to the
//!    span that caused them.
//! 3. **Metrics time series.** On a configurable cycle cadence the
//!    engine samples residency occupancy, HIR fill, fault backlog and
//!    the degraded-mode flag into a [`MetricsSeries`], exportable as
//!    JSONL or CSV.
//!
//! The profiler is installed with [`crate::Simulation::set_profiler`]
//! and costs one `Option` branch per event when absent. Every
//! accumulation site in the engine sits behind that opt-in guard —
//! enforced statically by `hpe-lint`'s `profile-guard` rule.

use std::collections::HashMap;

use uvm_types::{CycleAccount, PageId, SpanStage};
use uvm_util::{json, Histogram, Json, ToJson};

/// Default metrics-series cadence, in cycles between samples (matches
/// the bench runner's cycle-window width: ≈ 9 fault services on the
/// Table I timing).
pub const DEFAULT_PROFILE_CADENCE: u64 = 1 << 18;

/// Configuration for [`crate::Simulation::set_profiler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileConfig {
    /// Cycles between metrics-series samples (0 is clamped to 1).
    pub series_cadence: u64,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig {
            series_cadence: DEFAULT_PROFILE_CADENCE,
        }
    }
}

impl ProfileConfig {
    /// Config sampling the metrics series every `series_cadence` cycles
    /// (0 is clamped to 1).
    pub fn new(series_cadence: u64) -> Self {
        ProfileConfig {
            series_cadence: series_cadence.max(1),
        }
    }
}

/// One fault's lifecycle, from raise to completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Stable span id (the fault-raise sequence number of this run).
    pub id: u64,
    /// The faulting page.
    pub page: PageId,
    /// Cycle the fault was raised (span open).
    pub raised_at: u64,
    /// Cycle the driver began servicing it, once it leaves the queue.
    pub service_start: Option<u64>,
    /// Cycle the page landed (span close).
    pub done_at: Option<u64>,
    /// Additional warps that coalesced onto this pending fault.
    pub coalesced_warps: u64,
    /// Completion-loss retries suffered while in service.
    pub retries: u32,
    /// Retry/backoff cycles attributed to this span.
    pub retry_cycles: u64,
    /// When this fault re-faulted a recently evicted page, the span that
    /// originally migrated it (the wrong eviction's victim span).
    pub refault_of: Option<u64>,
    /// Wrong-eviction re-faults later attributed *to* this span.
    pub caused_refaults: u32,
}

impl SpanRecord {
    /// Queue-stage latency (raise to service start), if serviced.
    pub fn queue_cycles(&self) -> Option<u64> {
        self.service_start.map(|s| s - self.raised_at)
    }

    /// Service-stage latency (service start to landing), if completed.
    pub fn service_cycles(&self) -> Option<u64> {
        match (self.service_start, self.done_at) {
            (Some(s), Some(d)) => Some(d - s),
            _ => None,
        }
    }

    /// Whole-span latency (raise to landing), if completed.
    pub fn total_cycles(&self) -> Option<u64> {
        self.done_at.map(|d| d - self.raised_at)
    }
}

impl ToJson for SpanRecord {
    fn to_json(&self) -> Json {
        json!({
            "id": self.id,
            "page": self.page.0,
            "raised_at": self.raised_at,
            "service_start": self.service_start,
            "done_at": self.done_at,
            "coalesced_warps": self.coalesced_warps,
            "retries": u64::from(self.retries),
            "retry_cycles": self.retry_cycles,
            "refault_of": self.refault_of,
            "caused_refaults": u64::from(self.caused_refaults),
        })
    }
}

/// One metrics-registry sample (see [`MetricsSeries`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSample {
    /// Sample cycle (a multiple of the series cadence).
    pub cycle: u64,
    /// Pages resident in GPU memory.
    pub resident_pages: u64,
    /// Demand faults waiting in the driver queue (including the one in
    /// service, if any).
    pub fault_backlog: u64,
    /// Pages migrating in the current service batch.
    pub in_flight: u64,
    /// Warps that still have ops to retire.
    pub live_warps: u64,
    /// Fill of the policy's GPU-side HIR buffer (0 for policies
    /// without one).
    pub hir_fill: u64,
    /// Whether the policy is in its degraded fallback mode.
    pub degraded: bool,
    /// Cumulative demand faults serviced.
    pub faults_serviced: u64,
    /// Cumulative evictions.
    pub evictions: u64,
}

impl MetricsSample {
    /// CSV header matching [`MetricsSample::to_csv_row`].
    pub const CSV_HEADER: &'static str =
        "cycle,resident_pages,fault_backlog,in_flight,live_warps,hir_fill,degraded,\
         faults_serviced,evictions";

    /// The sample as one CSV row (no trailing newline).
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{}",
            self.cycle,
            self.resident_pages,
            self.fault_backlog,
            self.in_flight,
            self.live_warps,
            self.hir_fill,
            u8::from(self.degraded),
            self.faults_serviced,
            self.evictions,
        )
    }
}

impl ToJson for MetricsSample {
    fn to_json(&self) -> Json {
        json!({
            "cycle": self.cycle,
            "resident_pages": self.resident_pages,
            "fault_backlog": self.fault_backlog,
            "in_flight": self.in_flight,
            "live_warps": self.live_warps,
            "hir_fill": self.hir_fill,
            "degraded": self.degraded,
            "faults_serviced": self.faults_serviced,
            "evictions": self.evictions,
        })
    }
}

/// The metrics time series: engine-state samples on a fixed cycle
/// cadence, in cycle order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSeries {
    /// Cycles between samples.
    pub cadence: u64,
    /// GPU memory capacity, for occupancy ratios.
    pub capacity_pages: u64,
    /// The samples, oldest first.
    pub samples: Vec<MetricsSample>,
}

impl MetricsSeries {
    /// The series as JSONL: one compact JSON object per sample line.
    pub fn to_jsonl(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for s in &self.samples {
            let _ = writeln!(out, "{}", s.to_json());
        }
        out
    }

    /// The series as CSV with a header row.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{}", MetricsSample::CSV_HEADER);
        for s in &self.samples {
            let _ = writeln!(out, "{}", s.to_csv_row());
        }
        out
    }
}

impl ToJson for MetricsSeries {
    fn to_json(&self) -> Json {
        json!({
            "cadence": self.cadence,
            "capacity_pages": self.capacity_pages,
            "samples": self.samples,
        })
    }
}

/// The live profiler attached to a running [`crate::Simulation`].
///
/// Engine hooks charge accounts and advance spans; [`Profiler::finalize`]
/// turns the accumulated state into a [`ProfileReport`]. All hooks are
/// observation-only: nothing here is readable by the engine or policy.
#[derive(Debug)]
pub struct Profiler {
    accounts: [u64; CycleAccount::ALL.len()],
    series_cadence: u64,
    next_sample: u64,
    capacity_pages: u64,
    samples: Vec<MetricsSample>,
    spans: Vec<SpanRecord>,
    /// Span currently open (raised or in service) per page. Never
    /// iterated — lookups only, so hash order cannot leak.
    open_by_page: HashMap<PageId, u64>,
    /// Last completed span per page, for wrong-eviction attribution.
    last_span_by_page: HashMap<PageId, u64>,
    /// Stall start per warp index (raise to replay). Lookups only.
    stall_since: HashMap<usize, u64>,
}

impl Profiler {
    /// Creates a profiler with the given configuration.
    pub fn new(cfg: ProfileConfig) -> Self {
        let cadence = cfg.series_cadence.max(1);
        Profiler {
            accounts: [0; CycleAccount::ALL.len()],
            series_cadence: cadence,
            next_sample: 0,
            capacity_pages: 0,
            samples: Vec::new(),
            spans: Vec::new(),
            open_by_page: HashMap::new(),
            last_span_by_page: HashMap::new(),
            stall_since: HashMap::new(),
        }
    }

    /// Cycles between metrics samples.
    pub fn series_cadence(&self) -> u64 {
        self.series_cadence
    }

    /// Spans opened so far.
    pub fn spans_opened(&self) -> u64 {
        self.spans.len() as u64
    }

    fn index(account: CycleAccount) -> usize {
        CycleAccount::ALL
            .iter()
            .position(|&a| a == account)
            .unwrap_or(0)
    }

    /// Charges `cycles` to `account`.
    pub(crate) fn charge(&mut self, account: CycleAccount, cycles: u64) {
        self.accounts[Self::index(account)] += cycles;
    }

    /// Records the memory capacity for occupancy context (idempotent).
    pub(crate) fn set_capacity(&mut self, capacity_pages: u64) {
        self.capacity_pages = capacity_pages;
    }

    /// Opens a span for a newly raised fault on `page`.
    pub(crate) fn open_span(&mut self, page: PageId, now: u64) {
        let id = self.spans.len() as u64;
        self.spans.push(SpanRecord {
            id,
            page,
            raised_at: now,
            service_start: None,
            done_at: None,
            coalesced_warps: 0,
            retries: 0,
            retry_cycles: 0,
            refault_of: None,
            caused_refaults: 0,
        });
        self.open_by_page.insert(page, id);
    }

    /// Marks the open span on `page` as a wrong-eviction re-fault
    /// (the engine's re-fault window classified it), attributing it back
    /// to the span that originally migrated the page.
    pub(crate) fn mark_wrong_eviction(&mut self, page: PageId) {
        let Some(&id) = self.open_by_page.get(&page) else {
            return;
        };
        if let Some(&orig) = self.last_span_by_page.get(&page) {
            self.spans[id as usize].refault_of = Some(orig);
            self.spans[orig as usize].caused_refaults += 1;
        }
    }

    /// Counts one more warp coalescing onto the pending fault on `page`.
    pub(crate) fn note_coalesce(&mut self, page: PageId) {
        if let Some(&id) = self.open_by_page.get(&page) {
            self.spans[id as usize].coalesced_warps += 1;
        }
    }

    /// Marks the open span on `page` as entering service at `now`.
    pub(crate) fn begin_service(&mut self, page: PageId, now: u64) {
        if let Some(&id) = self.open_by_page.get(&page) {
            let span = &mut self.spans[id as usize];
            if span.service_start.is_none() {
                span.service_start = Some(now);
            }
        }
    }

    /// Attributes one completion-loss retry of `delay` cycles to the
    /// in-service span on `page`, and charges the retry-backoff account.
    pub(crate) fn note_retry(&mut self, page: PageId, delay: u64) {
        self.charge(CycleAccount::RetryBackoff, delay);
        if let Some(&id) = self.open_by_page.get(&page) {
            let span = &mut self.spans[id as usize];
            span.retries += 1;
            span.retry_cycles += delay;
        }
    }

    /// Closes the span on `page` (its page landed at `now`).
    pub(crate) fn close_span(&mut self, page: PageId, now: u64) {
        if let Some(id) = self.open_by_page.remove(&page) {
            self.spans[id as usize].done_at = Some(now);
            self.last_span_by_page.insert(page, id);
        }
    }

    /// Records that warp `w` stalled on a fault at `now`.
    pub(crate) fn warp_stalled(&mut self, w: usize, now: u64) {
        self.stall_since.entry(w).or_insert(now);
    }

    /// Charges warp `w`'s finished stall (replay at `now`) to `sm_stall`.
    pub(crate) fn warp_resumed(&mut self, w: usize, now: u64) {
        if let Some(since) = self.stall_since.remove(&w) {
            self.charge(CycleAccount::SmStall, now.saturating_sub(since));
        }
    }

    /// Whether the metrics series owes one or more samples at `now`.
    pub(crate) fn sample_due(&self, now: u64) -> bool {
        now >= self.next_sample
    }

    /// Records `snapshot` for every cadence boundary at or before `now`
    /// (engine state is constant between events, so crossed boundaries
    /// all see the same values, stamped at their own cycle).
    pub(crate) fn record_samples(&mut self, now: u64, snapshot: MetricsSample) {
        while self.next_sample <= now {
            let mut s = snapshot;
            s.cycle = self.next_sample;
            self.samples.push(s);
            self.next_sample += self.series_cadence;
        }
    }

    /// Finalizes the run into a [`ProfileReport`], deriving the
    /// `driver_idle` residual so the timeline accounts sum exactly to
    /// `total_cycles`.
    pub fn finalize(mut self, total_cycles: u64) -> ProfileReport {
        let busy: u64 = CycleAccount::ALL
            .iter()
            .filter(|a| a.is_timeline() && **a != CycleAccount::DriverIdle)
            .map(|&a| self.accounts[Self::index(a)])
            .sum();
        self.accounts[Self::index(CycleAccount::DriverIdle)] = total_cycles.saturating_sub(busy);

        let mut hists = SpanStage::ALL.map(|stage| match stage {
            SpanStage::Queue => Histogram::new("span_queue_cycles", 1 << 14, 64),
            SpanStage::Service => Histogram::new("span_service_cycles", 1 << 12, 64),
            SpanStage::Total => Histogram::new("span_total_cycles", 1 << 14, 64),
            SpanStage::Retry => Histogram::new("span_retry_cycles", 1 << 12, 64),
        });
        let mut summary = SpanSummary {
            opened: self.spans.len() as u64,
            ..SpanSummary::default()
        };
        for span in &self.spans {
            summary.coalesced_warps += span.coalesced_warps;
            summary.retries += u64::from(span.retries);
            summary.retry_cycles += span.retry_cycles;
            if span.refault_of.is_some() {
                summary.refault_spans += 1;
            }
            summary.caused_refaults += u64::from(span.caused_refaults);
            let Some(total) = span.total_cycles() else {
                continue;
            };
            summary.completed += 1;
            if let Some(q) = span.queue_cycles() {
                hists[0].record(q);
            }
            if let Some(s) = span.service_cycles() {
                hists[1].record(s);
            }
            hists[2].record(total);
            if span.retries > 0 {
                hists[3].record(span.retry_cycles);
            }
        }
        let [queue, service, total, retry] = hists;
        ProfileReport {
            total_cycles,
            accounts: CycleAccount::ALL
                .iter()
                .map(|&a| (a, self.accounts[Self::index(a)]))
                .collect(),
            spans: summary,
            stage_histograms: vec![queue, service, total, retry],
            series: MetricsSeries {
                cadence: self.series_cadence,
                capacity_pages: self.capacity_pages,
                samples: self.samples,
            },
            records: self.spans,
        }
    }
}

/// Aggregate span counters for a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanSummary {
    /// Spans opened (= distinct fault raises).
    pub opened: u64,
    /// Spans whose page landed before the run ended.
    pub completed: u64,
    /// Warps coalesced onto already-pending faults.
    pub coalesced_warps: u64,
    /// Completion-loss retries across all spans.
    pub retries: u64,
    /// Retry/backoff cycles across all spans.
    pub retry_cycles: u64,
    /// Spans that re-faulted a recently evicted page (wrong evictions,
    /// attributed to their originating span).
    pub refault_spans: u64,
    /// Wrong-eviction re-faults attributed back to originating spans.
    pub caused_refaults: u64,
}

impl ToJson for SpanSummary {
    fn to_json(&self) -> Json {
        json!({
            "opened": self.opened,
            "completed": self.completed,
            "coalesced_warps": self.coalesced_warps,
            "retries": self.retries,
            "retry_cycles": self.retry_cycles,
            "refault_spans": self.refault_spans,
            "caused_refaults": self.caused_refaults,
        })
    }
}

/// A finalized profile: cycle accounts, span summary + per-stage
/// histograms, and the metrics time series.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Total simulated cycles of the run (`SimStats::cycles`).
    pub total_cycles: u64,
    /// Cycles charged per account, in [`CycleAccount::ALL`] order.
    pub accounts: Vec<(CycleAccount, u64)>,
    /// Aggregate span counters.
    pub spans: SpanSummary,
    /// Per-stage latency histograms, in [`SpanStage::ALL`] order
    /// (queue, service, total, retry).
    pub stage_histograms: Vec<Histogram>,
    /// The sampled metrics time series.
    pub series: MetricsSeries,
    /// Every span record, in raise order (span id = index).
    pub records: Vec<SpanRecord>,
}

impl ProfileReport {
    /// Cycles charged to `account`.
    pub fn account(&self, account: CycleAccount) -> u64 {
        self.accounts
            .iter()
            .find(|(a, _)| *a == account)
            .map_or(0, |&(_, n)| n)
    }

    /// Sum of the driver-timeline accounts; equals
    /// [`ProfileReport::total_cycles`] by construction (the conservation
    /// law — asserted in tests and by `hpe-trace profile`).
    pub fn timeline_sum(&self) -> u64 {
        self.accounts
            .iter()
            .filter(|(a, _)| a.is_timeline())
            .map(|&(_, n)| n)
            .sum()
    }

    /// The skippable-idle headline: cycles with no fault in service.
    pub fn driver_idle(&self) -> u64 {
        self.account(CycleAccount::DriverIdle)
    }

    /// The per-stage histogram for `stage`.
    pub fn stage_histogram(&self, stage: SpanStage) -> &Histogram {
        let idx = SpanStage::ALL.iter().position(|&s| s == stage).unwrap_or(0);
        &self.stage_histograms[idx]
    }

    /// Folded-stack lines (`component;account cycles`) consumable by
    /// standard flamegraph tools. Timeline accounts carry the driver
    /// timeline; overlay accounts are emitted under their own component
    /// roots so concurrent work is visible without double-counting the
    /// driver's.
    pub fn folded(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for &(a, n) in &self.accounts {
            if n > 0 {
                let _ = writeln!(out, "{};{} {}", a.component(), a.label(), n);
            }
        }
        out
    }

    /// Renders the account breakdown as aligned text, timeline accounts
    /// (with percentages of total) before overlay accounts.
    pub fn render_accounts(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "cycle accounts ({} total cycles):", self.total_cycles);
        let pct = |n: u64| {
            if self.total_cycles == 0 {
                0.0
            } else {
                100.0 * n as f64 / self.total_cycles as f64
            }
        };
        for &(a, n) in &self.accounts {
            if a.is_timeline() {
                let _ = writeln!(out, "  {:<18} {:>14} {:>6.2}%", a.label(), n, pct(n));
            }
        }
        let _ = writeln!(
            out,
            "  {:<18} {:>14} = total (conserved)",
            "timeline sum",
            self.timeline_sum()
        );
        let _ = writeln!(out, "overlay accounts (concurrent, not conserved):");
        for &(a, n) in &self.accounts {
            if !a.is_timeline() {
                let _ = writeln!(out, "  {:<18} {:>14}", a.label(), n);
            }
        }
        out
    }

    /// Renders the span summary with p50/p99 per stage.
    pub fn render_spans(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let s = &self.spans;
        let _ = writeln!(
            out,
            "spans: {} opened, {} completed, {} coalesced warps",
            s.opened, s.completed, s.coalesced_warps
        );
        let _ = writeln!(
            out,
            "  wrong-eviction re-fault spans: {} (attributed back to {} origin spans)",
            s.refault_spans, s.caused_refaults
        );
        let _ = writeln!(
            out,
            "  retries: {} ({} backoff cycles attributed to spans)",
            s.retries, s.retry_cycles
        );
        for (stage, h) in SpanStage::ALL.iter().zip(&self.stage_histograms) {
            let _ = writeln!(
                out,
                "  {:<8} n={:<8} mean={:<12.1} p50={:<10} p99={:<10} max={}",
                stage.label(),
                h.count(),
                h.mean(),
                h.quantile(0.5).map_or("-".into(), |v| v.to_string()),
                h.quantile(0.99).map_or("-".into(), |v| v.to_string()),
                h.max().map_or("-".into(), |v| v.to_string()),
            );
        }
        out
    }
}

impl ToJson for ProfileReport {
    fn to_json(&self) -> Json {
        let accounts: Vec<Json> = self
            .accounts
            .iter()
            .map(|&(a, n)| {
                json!({
                    "account": a,
                    "component": a.component(),
                    "timeline": a.is_timeline(),
                    "cycles": n,
                })
            })
            .collect();
        let stages: Vec<Json> = SpanStage::ALL
            .iter()
            .zip(&self.stage_histograms)
            .map(|(stage, h)| {
                json!({
                    "stage": *stage,
                    "p50": h.quantile(0.5),
                    "p99": h.quantile(0.99),
                    "histogram": h,
                })
            })
            .collect();
        json!({
            "total_cycles": self.total_cycles,
            "timeline_sum": self.timeline_sum(),
            "driver_idle": self.driver_idle(),
            "accounts": accounts,
            "spans": self.spans,
            "stages": stages,
            "series": self.series,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_residual_makes_timeline_conserve() {
        let mut p = Profiler::new(ProfileConfig::default());
        p.charge(CycleAccount::FaultService, 700);
        p.charge(CycleAccount::PcieTransfer, 200);
        p.charge(CycleAccount::HirFlush, 50);
        p.charge(CycleAccount::SmCompute, 999_999); // overlay: not in the sum
        let report = p.finalize(10_000);
        assert_eq!(report.timeline_sum(), 10_000);
        assert_eq!(report.driver_idle(), 10_000 - 950);
        assert_eq!(report.account(CycleAccount::SmCompute), 999_999);
    }

    #[test]
    fn span_lifecycle_records_stages_and_attribution() {
        let mut p = Profiler::new(ProfileConfig::default());
        p.open_span(PageId(7), 100);
        p.note_coalesce(PageId(7));
        p.begin_service(PageId(7), 150);
        p.note_retry(PageId(7), 40);
        p.close_span(PageId(7), 400);
        // The page is evicted and re-faults: the new span points back.
        p.open_span(PageId(7), 900);
        p.mark_wrong_eviction(PageId(7));
        p.begin_service(PageId(7), 900);
        p.close_span(PageId(7), 1000);
        let report = p.finalize(2_000);
        assert_eq!(report.spans.opened, 2);
        assert_eq!(report.spans.completed, 2);
        assert_eq!(report.spans.coalesced_warps, 1);
        assert_eq!(report.spans.refault_spans, 1);
        assert_eq!(report.spans.caused_refaults, 1);
        assert_eq!(report.records[0].caused_refaults, 1);
        assert_eq!(report.records[1].refault_of, Some(0));
        assert_eq!(report.records[0].queue_cycles(), Some(50));
        assert_eq!(report.records[0].service_cycles(), Some(250));
        assert_eq!(report.records[0].retry_cycles, 40);
        assert_eq!(report.account(CycleAccount::RetryBackoff), 40);
        assert_eq!(report.stage_histogram(SpanStage::Total).count(), 2);
    }

    #[test]
    fn series_samples_every_crossed_boundary() {
        let mut p = Profiler::new(ProfileConfig {
            series_cadence: 100,
        });
        let snap = MetricsSample {
            cycle: 0,
            resident_pages: 5,
            fault_backlog: 2,
            in_flight: 1,
            live_warps: 3,
            hir_fill: 4,
            degraded: false,
            faults_serviced: 9,
            evictions: 1,
        };
        assert!(p.sample_due(0));
        p.record_samples(250, snap);
        assert!(!p.sample_due(299));
        assert!(p.sample_due(300));
        let report = p.finalize(1_000);
        let cycles: Vec<u64> = report.series.samples.iter().map(|s| s.cycle).collect();
        assert_eq!(cycles, vec![0, 100, 200]);
        assert_eq!(report.series.samples[2].resident_pages, 5);
    }

    #[test]
    fn exports_are_parallel_jsonl_and_csv() {
        let mut p = Profiler::new(ProfileConfig { series_cadence: 10 });
        p.set_capacity(64);
        p.record_samples(
            0,
            MetricsSample {
                cycle: 0,
                resident_pages: 1,
                fault_backlog: 0,
                in_flight: 0,
                live_warps: 2,
                hir_fill: 0,
                degraded: true,
                faults_serviced: 0,
                evictions: 0,
            },
        );
        let report = p.finalize(100);
        let jsonl = report.series.to_jsonl();
        assert_eq!(jsonl.lines().count(), 1);
        let line = Json::parse(jsonl.lines().next().unwrap()).unwrap();
        assert_eq!(line.get("degraded").and_then(Json::as_bool), Some(true));
        let csv = report.series.to_csv();
        assert!(csv.starts_with("cycle,"));
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.lines().nth(1).unwrap().starts_with("0,1,0,0,2,0,1,"));
    }

    #[test]
    fn folded_stacks_name_component_then_account() {
        let mut p = Profiler::new(ProfileConfig::default());
        p.charge(CycleAccount::HirFlush, 42);
        let report = p.finalize(100);
        let folded = report.folded();
        assert!(folded.contains("pcie;hir_flush 42"));
        assert!(folded.contains("driver;driver_idle 58"));
        // Zero accounts are elided.
        assert!(!folded.contains("sm_compute"));
    }

    #[test]
    fn report_json_carries_conservation_fields() {
        let p = Profiler::new(ProfileConfig::default());
        let report = p.finalize(500);
        let v = report.to_json();
        assert_eq!(v.get("total_cycles").and_then(Json::as_u64), Some(500));
        assert_eq!(v.get("timeline_sum").and_then(Json::as_u64), Some(500));
        assert_eq!(v.get("driver_idle").and_then(Json::as_u64), Some(500));
    }
}
