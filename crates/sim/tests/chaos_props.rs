//! Property-based tests of the engine under random fault-injection plans.
//!
//! The clean-run invariant suite lives in `sim_props.rs`; these cases
//! re-check the core accounting invariants while a randomized
//! [`FaultPlan`] perturbs latencies, drops completions, and corrupts
//! policy signals. Timing-sensitive clean-run bounds (e.g. driver busy
//! cycles per fault) are intentionally NOT asserted here: jitter may
//! legally shrink a service below its base latency.

use std::collections::HashSet;
use uvm_policies::Lru;
use uvm_sim::{FaultPlan, Simulation};
use uvm_types::{SimConfig, SimStats, TlbConfig};
use uvm_util::prop::Checker;
use uvm_util::{Rng, ToJson};
use uvm_workloads::Trace;

fn small_cfg(n_sms: u32) -> SimConfig {
    SimConfig::builder()
        .n_sms(n_sms)
        .warps_per_sm(1)
        .l1_tlb(TlbConfig {
            entries: 4,
            ways: 4,
            latency_cycles: 1,
        })
        .l2_tlb(TlbConfig {
            entries: 8,
            ways: 4,
            latency_cycles: 10,
        })
        .build()
        .expect("valid config")
}

/// Draws a random *completing* plan: every perturbation may be active,
/// but completion loss is always bounded so the run can finish.
fn random_plan(rng: &mut Rng) -> FaultPlan {
    let lossy = rng.gen_bool(0.5);
    FaultPlan {
        seed: rng.next_u64(),
        latency_jitter: rng.gen_f64() * 0.5,
        tail_probability: rng.gen_f64() * 0.1,
        tail_multiplier: rng.gen_range(2u64..10),
        congestion_period: rng.gen_range(1_000u64..2_000_000),
        congestion_duty: rng.gen_f64(),
        congestion_factor: rng.gen_range(2u64..10),
        completion_loss_probability: if lossy { rng.gen_f64() * 0.2 } else { 0.0 },
        retry_cycles: rng.gen_range(1_000u64..20_000),
        max_completion_retries: Some(rng.gen_range(1u64..4) as u32),
        hir_outage_period: rng.gen_range(16u64..512),
        hir_outage_duty: rng.gen_f64(),
        spurious_wrong_eviction_probability: rng.gen_f64() * 0.1,
    }
}

fn run_chaos(global: &[u64], capacity: u64, plan: &FaultPlan) -> SimStats {
    let trace = Trace::from_global(global, 40, 2, 3, 3);
    let mut sim = Simulation::new(small_cfg(3), &trace, Lru::new(), capacity).expect("valid sim");
    sim.set_fault_plan(plan.clone()).expect("valid plan");
    sim.run().expect("chaos run completes").stats
}

#[test]
fn accounting_invariants_survive_random_fault_plans() {
    Checker::new().cases(48).run(
        |rng| {
            (
                rng.gen_vec(1..300, |r| r.gen_range(0u64..40)),
                rng.gen_range(2u64..48),
                random_plan(rng),
            )
        },
        |(global, capacity, plan)| {
            let capacity = *capacity;
            plan.validate().expect("generated plan is valid");
            let distinct = global.iter().collect::<HashSet<_>>().len() as u64;
            let stats = run_chaos(global, capacity, plan);

            // Execution accounting is injection-independent: every op ran
            // exactly once no matter how services were perturbed.
            assert_eq!(stats.mem_accesses, global.len() as u64);
            assert!(stats.faults() >= distinct);
            assert!(stats.faults() <= global.len() as u64);
            // Residency conservation still bounds live pages by capacity.
            let resident_end = stats.faults() - stats.evictions();
            assert!(resident_end <= capacity.min(distinct));
            assert!(resident_end >= 1);
            // Injection counters are bounded by what the run serviced.
            let res = &stats.resilience;
            assert!(res.tail_latency_events <= stats.faults());
            assert!(res.congested_services <= stats.faults());
            assert!(res.faults_during_hir_outage <= stats.faults());
            assert!(res.spurious_wrong_evictions <= stats.faults());
            assert!(res.fallback_victims <= stats.evictions());
            // Bounded retries: each fault loses at most max_retries signals.
            let max_retries = u64::from(plan.max_completion_retries.expect("bounded plan"));
            assert!(res.completions_lost <= stats.faults() * max_retries);
            // Lost completions stall the driver for their retry latency.
            assert!(
                stats.driver.busy_cycles >= res.completions_lost * plan.retry_cycles,
                "busy {} < lost {} x retry {}",
                stats.driver.busy_cycles,
                res.completions_lost,
                plan.retry_cycles
            );
        },
    );
}

#[test]
fn identical_seeds_reproduce_identical_chaos_runs() {
    Checker::new().cases(32).run(
        |rng| {
            (
                rng.gen_vec(1..200, |r| r.gen_range(0u64..30)),
                rng.gen_range(2u64..32),
                random_plan(rng),
            )
        },
        |(global, capacity, plan)| {
            let a = run_chaos(global, *capacity, plan);
            let b = run_chaos(global, *capacity, plan);
            assert_eq!(a, b, "same plan + seed must replay identically");
        },
    );
}

#[test]
fn noop_plan_is_byte_identical_to_no_plan() {
    Checker::new().cases(32).run(
        |rng| {
            (
                rng.gen_vec(1..200, |r| r.gen_range(0u64..30)),
                rng.gen_range(2u64..32),
            )
        },
        |(global, capacity)| {
            let trace = Trace::from_global(global, 30, 2, 3, 3);
            let clean = Simulation::new(small_cfg(3), &trace, Lru::new(), *capacity)
                .expect("valid sim")
                .run()
                .expect("run completes")
                .stats;
            let noop = run_chaos(global, *capacity, &FaultPlan::none());
            assert_eq!(
                clean.to_json().to_string(),
                noop.to_json().to_string(),
                "a no-op plan must not perturb anything"
            );
            assert!(!noop.resilience.any());
        },
    );
}
