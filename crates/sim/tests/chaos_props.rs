//! Property-based tests of the engine under random fault-injection plans.
//!
//! The clean-run invariant suite lives in `sim_props.rs`; these cases
//! re-check the core accounting invariants while a randomized
//! [`FaultPlan`] perturbs latencies, drops completions, and corrupts
//! policy signals. Timing-sensitive clean-run bounds (e.g. driver busy
//! cycles per fault) are intentionally NOT asserted here: jitter may
//! legally shrink a service below its base latency.

use std::collections::HashSet;
use uvm_policies::Lru;
use uvm_sim::{trace_for, Checkpoint, FaultPlan, RetryPolicy, Sanitizer, Simulation};
use uvm_types::{Oversubscription, SimConfig, SimError, SimStats, TlbConfig};
use uvm_util::prop::Checker;
use uvm_util::{FromJson, Json, Rng, ToJson};
use uvm_workloads::{registry, Trace};

fn small_cfg(n_sms: u32) -> SimConfig {
    SimConfig::builder()
        .n_sms(n_sms)
        .warps_per_sm(1)
        .l1_tlb(TlbConfig {
            entries: 4,
            ways: 4,
            latency_cycles: 1,
        })
        .l2_tlb(TlbConfig {
            entries: 8,
            ways: 4,
            latency_cycles: 10,
        })
        .build()
        .expect("valid config")
}

/// Draws a random *completing* plan: every perturbation may be active,
/// but completion loss is always bounded so the run can finish.
fn random_plan(rng: &mut Rng) -> FaultPlan {
    let lossy = rng.gen_bool(0.5);
    FaultPlan {
        seed: rng.next_u64(),
        latency_jitter: rng.gen_f64() * 0.5,
        tail_probability: rng.gen_f64() * 0.1,
        tail_multiplier: rng.gen_range(2u64..10),
        congestion_period: rng.gen_range(1_000u64..2_000_000),
        // Duties are kept away from zero so the congested / down windows
        // never round to zero cycles (validate rejects such plans).
        congestion_duty: 0.01 + rng.gen_f64() * 0.99,
        congestion_factor: rng.gen_range(2u64..10),
        completion_loss_probability: if lossy { rng.gen_f64() * 0.2 } else { 0.0 },
        retry_cycles: rng.gen_range(1_000u64..20_000),
        max_completion_retries: Some(rng.gen_range(1u64..4) as u32),
        hir_outage_period: rng.gen_range(16u64..512),
        hir_outage_duty: 0.1 + rng.gen_f64() * 0.9,
        spurious_wrong_eviction_probability: rng.gen_f64() * 0.1,
        hir_delay_probability: rng.gen_f64() * 0.3,
        hir_delay_faults: rng.gen_range(1u64..64),
        victim_drop_probability: rng.gen_f64() * 0.1,
        windows: Vec::new(),
    }
}

fn run_chaos(global: &[u64], capacity: u64, plan: &FaultPlan) -> SimStats {
    let trace = Trace::from_global(global, 40, 2, 3, 3);
    let mut sim = Simulation::new(small_cfg(3), &trace, Lru::new(), capacity).expect("valid sim");
    sim.set_fault_plan(plan.clone()).expect("valid plan");
    // Every chaos property runs with the invariant sanitizer enabled at a
    // tight cadence: injection must never corrupt engine accounting, and
    // the sanitizer itself must never perturb stats (the comparisons
    // against sanitizer-off runs below double as that proof).
    sim.set_sanitizer(Sanitizer::new(256));
    sim.run().expect("chaos run completes").stats
}

#[test]
fn accounting_invariants_survive_random_fault_plans() {
    Checker::new().cases(48).run(
        |rng| {
            (
                rng.gen_vec(1..300, |r| r.gen_range(0u64..40)),
                rng.gen_range(2u64..48),
                random_plan(rng),
            )
        },
        |(global, capacity, plan)| {
            let capacity = *capacity;
            plan.validate().expect("generated plan is valid");
            let distinct = global.iter().collect::<HashSet<_>>().len() as u64;
            let stats = run_chaos(global, capacity, plan);

            // Execution accounting is injection-independent: every op ran
            // exactly once no matter how services were perturbed.
            assert_eq!(stats.mem_accesses, global.len() as u64);
            assert!(stats.faults() >= distinct);
            assert!(stats.faults() <= global.len() as u64);
            // Residency conservation still bounds live pages by capacity.
            let resident_end = stats.faults() - stats.evictions();
            assert!(resident_end <= capacity.min(distinct));
            assert!(resident_end >= 1);
            // Injection counters are bounded by what the run serviced.
            let res = &stats.resilience;
            assert!(res.tail_latency_events <= stats.faults());
            assert!(res.congested_services <= stats.faults());
            assert!(res.faults_during_hir_outage <= stats.faults());
            assert!(res.spurious_wrong_evictions <= stats.faults());
            assert!(res.fallback_victims <= stats.evictions());
            // Bounded retries: each fault loses at most max_retries signals.
            let max_retries = u64::from(plan.max_completion_retries.expect("bounded plan"));
            assert!(res.completions_lost <= stats.faults() * max_retries);
            // Lost completions stall the driver for their retry latency.
            assert!(
                stats.driver.busy_cycles >= res.completions_lost * plan.retry_cycles,
                "busy {} < lost {} x retry {}",
                stats.driver.busy_cycles,
                res.completions_lost,
                plan.retry_cycles
            );
        },
    );
}

#[test]
fn identical_seeds_reproduce_identical_chaos_runs() {
    Checker::new().cases(32).run(
        |rng| {
            (
                rng.gen_vec(1..200, |r| r.gen_range(0u64..30)),
                rng.gen_range(2u64..32),
                random_plan(rng),
            )
        },
        |(global, capacity, plan)| {
            let a = run_chaos(global, *capacity, plan);
            let b = run_chaos(global, *capacity, plan);
            assert_eq!(a, b, "same plan + seed must replay identically");
        },
    );
}

/// Acceptance: an unbounded completion loss under a retry policy must
/// surface as the typed `SimError::RetriesExhausted` — never a panic and
/// never a silent stall.
#[test]
fn unbounded_loss_with_retry_policy_reports_retries_exhausted() {
    let global: Vec<u64> = (0..10).collect();
    let trace = Trace::from_global(&global, 10, 0, 1, 1);
    let mut sim = Simulation::new(small_cfg(1), &trace, Lru::new(), 16).expect("valid sim");
    sim.set_fault_plan(FaultPlan::livelock(9))
        .expect("valid plan");
    sim.set_retry_policy(RetryPolicy::default())
        .expect("valid policy");
    match sim.run() {
        Err(e @ SimError::RetriesExhausted { .. }) => {
            assert_eq!(e.kind(), "RetriesExhausted");
            assert!(
                e.to_string().contains("retries exhausted"),
                "actionable message, got: {e}"
            );
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
}

/// Acceptance: checkpoint → resume yields `SimStats` byte-identical to the
/// uninterrupted run on STN, for several seeds, clean and under active
/// fault plans.
#[test]
fn checkpoint_resume_reproduces_stn_byte_identically() {
    let cfg = SimConfig::scaled_default();
    let app = registry::by_abbr("STN").expect("STN registered");
    let trace = trace_for(&cfg, app);
    let capacity = Oversubscription::Rate75.capacity_pages(app.footprint_pages());
    let plans: Vec<(&str, Option<FaultPlan>)> = vec![
        ("clean", None),
        ("signal-chaos/1", Some(FaultPlan::signal_chaos(1))),
        ("latency-storm/2019", Some(FaultPlan::latency_storm(2019))),
        ("completion-loss/77", Some(FaultPlan::completion_loss(77))),
    ];
    for (label, plan) in &plans {
        let build = || {
            let mut sim =
                Simulation::new(cfg.clone(), &trace, Lru::new(), capacity).expect("valid sim");
            if let Some(p) = plan {
                sim.set_fault_plan(p.clone()).expect("valid plan");
            }
            sim
        };
        let straight = build().run().expect("straight run completes").stats;

        let mut paused = build();
        let done = paused.run_until(10_000_000).expect("first half runs");
        assert!(!done, "{label}: pause point must fall inside the run");
        let ckpt = paused.checkpoint();

        let mut resumed = build();
        resumed
            .resume(&ckpt)
            .expect("identical inputs replay identically");
        let stats = resumed.finish().expect("resumed run completes").stats;
        assert_eq!(
            stats.to_json().to_string(),
            straight.to_json().to_string(),
            "{label}: resumed stats must be byte-identical"
        );
    }
}

/// Property: the invariant sanitizer is observation-only under active
/// fault plans — a sanitized run's `SimStats` are byte-identical to the
/// same run without a sanitizer, at any cadence.
#[test]
fn sanitizer_is_byte_identical_under_random_fault_plans() {
    Checker::new().cases(24).run(
        |rng| {
            (
                rng.gen_vec(1..200, |r| r.gen_range(0u64..30)),
                rng.gen_range(2u64..32),
                random_plan(rng),
                rng.gen_range(1u64..4096),
            )
        },
        |(global, capacity, plan, cadence)| {
            let trace = Trace::from_global(global, 30, 2, 3, 3);
            let run = |sanitize: Option<u64>| {
                let mut sim = Simulation::new(small_cfg(3), &trace, Lru::new(), *capacity)
                    .expect("valid sim");
                sim.set_fault_plan(plan.clone()).expect("valid plan");
                if let Some(c) = sanitize {
                    sim.set_sanitizer(Sanitizer::new(c));
                }
                sim.run().expect("run completes").stats
            };
            let plain = run(None);
            let sanitized = run(Some(*cadence));
            assert_eq!(
                sanitized.to_json().to_string(),
                plain.to_json().to_string(),
                "sanitizer (cadence {cadence}) must not perturb stats"
            );
        },
    );
}

/// Property: `FaultPlan` JSON serialization round-trips byte-identically
/// (serialize → parse → re-serialize).
#[test]
fn fault_plan_json_roundtrip_is_byte_identical() {
    Checker::new().cases(64).run(random_plan, |plan| {
        let text = plan.to_json().to_string();
        let parsed = FaultPlan::from_json(&Json::parse(&text).expect("serialized plan parses"))
            .expect("parsed plan converts");
        assert_eq!(&parsed, plan);
        assert_eq!(parsed.to_json().to_string(), text);
    });
}

/// Property: checkpoints taken from real paused chaos runs round-trip
/// through JSON byte-identically.
#[test]
fn checkpoint_json_roundtrip_is_byte_identical() {
    Checker::new().cases(12).run(
        |rng| {
            (
                rng.gen_vec(50..300, |r| r.gen_range(0u64..40)),
                rng.gen_range(4u64..48),
                random_plan(rng),
                rng.gen_range(10_000u64..1_000_000),
            )
        },
        |(global, capacity, plan, limit)| {
            let trace = Trace::from_global(global, 40, 2, 3, 3);
            let mut sim =
                Simulation::new(small_cfg(3), &trace, Lru::new(), *capacity).expect("valid sim");
            sim.set_fault_plan(plan.clone()).expect("valid plan");
            let _ = sim.run_until(*limit).expect("run proceeds");
            let ckpt = sim.checkpoint();
            let text = ckpt.to_json().to_string();
            let back = Checkpoint::from_json(&Json::parse(&text).expect("checkpoint parses"))
                .expect("checkpoint converts");
            assert_eq!(back, ckpt);
            assert_eq!(back.to_json().to_string(), text);
        },
    );
}

/// Sanitizer cadence boundaries: a cadence of 1 checks after every event
/// and a cadence far beyond the run's event count still gets exactly the
/// final end-of-run pass — both leave stats byte-identical to no
/// sanitizer at all.
#[test]
fn sanitizer_cadence_boundaries_check_and_stay_observation_only() {
    let global: Vec<u64> = (0..30u64).cycle().take(120).collect();
    let trace = Trace::from_global(&global, 30, 2, 3, 3);
    let run = |sanitize: Option<u64>| {
        let mut sim = Simulation::new(small_cfg(3), &trace, Lru::new(), 20).expect("valid sim");
        sim.set_fault_plan(FaultPlan::latency_storm(11))
            .expect("valid plan");
        if let Some(c) = sanitize {
            sim.set_sanitizer(Sanitizer::new(c));
        }
        assert!(sim.run_until(u64::MAX).expect("run completes"));
        let checks = sim.sanitizer().map(|s| s.checks_run());
        (sim.finish().expect("finish").stats, checks)
    };
    let (plain, _) = run(None);

    // Cadence 1: one check per event plus the final pass.
    let (tight, tight_checks) = run(Some(1));
    assert_eq!(tight.to_json().to_string(), plain.to_json().to_string());
    assert!(tight_checks.expect("sanitizer attached") > 1);

    // Cadence longer than the whole run: run_until itself never hits a
    // cadence boundary; finish() still runs the final pass.
    let (sparse, sparse_checks) = run(Some(u64::MAX));
    assert_eq!(sparse.to_json().to_string(), plain.to_json().to_string());
    assert_eq!(
        sparse_checks.expect("sanitizer attached"),
        0,
        "cadence beyond run length must not fire mid-run"
    );
}

#[test]
fn noop_plan_is_byte_identical_to_no_plan() {
    Checker::new().cases(32).run(
        |rng| {
            (
                rng.gen_vec(1..200, |r| r.gen_range(0u64..30)),
                rng.gen_range(2u64..32),
            )
        },
        |(global, capacity)| {
            let trace = Trace::from_global(global, 30, 2, 3, 3);
            let clean = Simulation::new(small_cfg(3), &trace, Lru::new(), *capacity)
                .expect("valid sim")
                .run()
                .expect("run completes")
                .stats;
            let noop = run_chaos(global, *capacity, &FaultPlan::none());
            assert_eq!(
                clean.to_json().to_string(),
                noop.to_json().to_string(),
                "a no-op plan must not perturb anything"
            );
            assert!(!noop.resilience.any());
        },
    );
}
