//! Property-based tests of the simulation engine's accounting invariants.

use std::collections::HashSet;
use uvm_policies::Lru;
use uvm_sim::Simulation;
use uvm_types::{SimConfig, TlbConfig};
use uvm_util::prop::Checker;
use uvm_workloads::Trace;

fn small_cfg(n_sms: u32, warps: u32) -> SimConfig {
    SimConfig::builder()
        .n_sms(n_sms)
        .warps_per_sm(warps)
        .l1_tlb(TlbConfig {
            entries: 4,
            ways: 4,
            latency_cycles: 1,
        })
        .l2_tlb(TlbConfig {
            entries: 8,
            ways: 4,
            latency_cycles: 10,
        })
        .build()
        .expect("valid config")
}

#[test]
fn accounting_invariants_hold() {
    Checker::new().cases(48).run(
        |rng| {
            (
                rng.gen_vec(1..400, |r| r.gen_range(0u64..40)),
                rng.gen_range(2u64..48),
                rng.gen_range(1u32..6),
                rng.gen_range(0u16..8),
            )
        },
        |(global, capacity, streams, compute)| {
            let (capacity, streams, compute) = (*capacity, *streams, *compute);
            let footprint = 40;
            let distinct = global.iter().collect::<HashSet<_>>().len() as u64;
            let trace = Trace::from_global(global, footprint, compute, streams, 3);
            let cfg = small_cfg(streams, 1);
            let stats = Simulation::new(cfg, &trace, Lru::new(), capacity)
                .expect("valid sim")
                .run()
                .expect("run completes")
                .stats;

            // Every op executed exactly once.
            assert_eq!(stats.mem_accesses, global.len() as u64);
            assert_eq!(
                stats.instructions,
                global.len() as u64 * (1 + u64::from(compute))
            );
            // Faults: at least compulsory, at most one per reference.
            assert!(stats.faults() >= distinct);
            assert!(stats.faults() <= global.len() as u64);
            // Residency conservation: inserted - evicted = resident at end.
            let resident_end = stats.faults() - stats.evictions();
            assert!(resident_end <= capacity.min(distinct));
            assert!(resident_end >= 1);
            // TLB lookups partition into hits and misses consistently.
            assert_eq!(
                stats.tlb.l1_hits + stats.tlb.l1_misses,
                stats.tlb.l2_hits + stats.tlb.l2_misses + stats.tlb.l1_hits
            );
            // Every walk is a hit or a fault-triggering miss; replays re-walk,
            // so hits + distinct faults cannot exceed total walks.
            assert!(stats.walk_hits <= stats.walks);
            // Time moved forward and the driver was busy for every fault.
            assert!(stats.cycles > 0);
            assert!(stats.driver.busy_cycles >= stats.faults() * 28_000);
        },
    );
}

#[test]
fn simulation_is_deterministic() {
    Checker::new().cases(48).run(
        |rng| {
            (
                rng.gen_vec(1..200, |r| r.gen_range(0u64..30)),
                rng.gen_range(2u64..32),
            )
        },
        |(global, capacity)| {
            let trace = Trace::from_global(global, 30, 2, 3, 4);
            let cfg = small_cfg(3, 1);
            let run = || {
                Simulation::new(cfg.clone(), &trace, Lru::new(), *capacity)
                    .expect("valid sim")
                    .run()
                    .expect("run completes")
                    .stats
            };
            assert_eq!(run(), run());
        },
    );
}

#[test]
fn ample_capacity_faults_compulsory_only() {
    Checker::new().cases(48).run(
        |rng| rng.gen_vec(10..250, |r| r.gen_range(0u64..24)),
        |global| {
            // With memory at least as large as the footprint, every policy
            // takes exactly the compulsory faults and evicts nothing.
            let distinct = global.iter().collect::<HashSet<_>>().len() as u64;
            let trace = Trace::from_global(global, 24, 0, 2, 4);
            let cfg = small_cfg(2, 1);
            let stats = Simulation::new(cfg, &trace, Lru::new(), 24)
                .expect("valid sim")
                .run()
                .expect("run completes")
                .stats;
            assert_eq!(stats.faults(), distinct);
            assert_eq!(stats.evictions(), 0);
            assert_eq!(stats.driver.wrong_evictions, 0);
        },
    );
}
