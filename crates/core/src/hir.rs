//! The hit-information record cache (HIR, Section IV-B).
//!
//! A small set-associative cache beside the GPU's page table walker. Each
//! entry is tagged with a page set address and carries one saturating
//! counter per page of the set, recording how many page-walk *hits* each
//! page received since the last flush. Every `transfer_interval`-th page
//! fault the touched entries are copied (in first-touch order, preserving
//! a relaxed reference order) to a buffer and shipped to the GPU driver
//! over PCIe, then the cache is flushed.

use uvm_types::{HirGeometry, PageId, PageSetId};

/// One flushed HIR entry: a page set and its per-page hit counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HirRecord {
    /// The page set this entry described.
    pub set: PageSetId,
    /// Per-page hit counts (index = page offset within the set); values
    /// saturate at the counter maximum (3 for 2-bit counters).
    pub counts: Vec<u8>,
}

impl HirRecord {
    /// Entry size on the wire: 48-bit tag + `pages * counter_bits` data,
    /// byte-rounded. 10 bytes for the paper's configuration.
    pub fn wire_bytes(pages_per_set: u32, counter_bits: u32) -> u64 {
        (48 + pages_per_set as u64 * counter_bits as u64).div_ceil(8)
    }
}

#[derive(Debug, Clone)]
struct Way {
    tag: PageSetId,
    counts: Vec<u8>,
    stamp: u64,
    valid: bool,
}

/// The GPU-side HIR cache.
///
/// # Examples
///
/// ```
/// use hpe_core::HirCache;
/// use uvm_types::{HirGeometry, PageId};
///
/// let mut hir = HirCache::new(HirGeometry::paper_default(), 4);
/// hir.record(PageId(0x80001));
/// hir.record(PageId(0x80001));
/// let records = hir.flush();
/// assert_eq!(records.len(), 1);
/// assert_eq!(records[0].counts[1], 2);
/// assert!(hir.flush().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct HirCache {
    geom: HirGeometry,
    set_shift: u32,
    pages_per_set: u32,
    ways: Vec<Way>,
    touch_order: Vec<PageSetId>,
    clock: u64,
    conflict_evictions: u64,
}

impl HirCache {
    /// Creates an empty HIR cache for page sets of `2^set_shift` pages.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid.
    pub fn new(geom: HirGeometry, set_shift: u32) -> Self {
        geom.validate().expect("valid HIR geometry"); // lint:allow(unwrap)
        let pages_per_set = 1u32 << set_shift;
        let n = geom.entries as usize;
        HirCache {
            geom,
            set_shift,
            pages_per_set,
            ways: vec![
                Way {
                    tag: PageSetId(0),
                    counts: vec![0; pages_per_set as usize],
                    stamp: 0,
                    valid: false,
                };
                n
            ],
            touch_order: Vec::new(),
            clock: 0,
            conflict_evictions: 0,
        }
    }

    /// Records one page-walk hit for `page`.
    pub fn record(&mut self, page: PageId) {
        self.clock += 1;
        let clock = self.clock;
        let tag = page.page_set(self.set_shift);
        let offset = page.set_offset(self.set_shift) as usize;
        let cmax = self.geom.counter_max() as u8;
        let sets = self.geom.sets() as usize;
        let ways = self.geom.ways as usize;
        let base = (tag.0 as usize % sets) * ways;

        // Hit: bump the page's counter.
        for i in base..base + ways {
            if self.ways[i].valid && self.ways[i].tag == tag {
                let c = &mut self.ways[i].counts[offset];
                *c = (*c + 1).min(cmax);
                self.ways[i].stamp = clock;
                return;
            }
        }
        // Miss: take an invalid way, else the LRU way (a conflict — that
        // entry's information is lost, Section IV-B issue 2).
        let slot = (base..base + ways)
            .find(|&i| !self.ways[i].valid)
            .unwrap_or_else(|| {
                (base..base + ways)
                    .min_by_key(|&i| self.ways[i].stamp)
                    .expect("ways nonzero") // lint:allow(unwrap)
            });
        if self.ways[slot].valid {
            self.conflict_evictions += 1;
        }
        let way = &mut self.ways[slot];
        way.tag = tag;
        way.counts.fill(0);
        way.counts[offset] = 1;
        way.stamp = clock;
        way.valid = true;
        self.touch_order.push(tag);
    }

    /// Copies the touched entries to the transfer buffer in first-touch
    /// order and flushes the cache. Only touched entries are transferred.
    pub fn flush(&mut self) -> Vec<HirRecord> {
        let mut records = Vec::new();
        let sets = self.geom.sets() as usize;
        let ways = self.geom.ways as usize;
        for tag in std::mem::take(&mut self.touch_order) {
            let base = (tag.0 as usize % sets) * ways;
            for i in base..base + ways {
                if self.ways[i].valid && self.ways[i].tag == tag {
                    records.push(HirRecord {
                        set: tag,
                        counts: self.ways[i].counts.clone(),
                    });
                    self.ways[i].valid = false;
                    break;
                }
            }
        }
        // Every valid way was inserted at some point since the last flush,
        // so its tag is in the touch order and was invalidated above
        // (conflict-displaced entries were overwritten in place, and a set
        // never holds two ways with the same tag).
        debug_assert!(self.ways.iter().all(|w| !w.valid));
        records
    }

    /// Number of currently touched (valid) entries.
    pub fn touched_len(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }

    /// Insertions that displaced a live entry (information loss).
    pub fn conflict_evictions(&self) -> u64 {
        self.conflict_evictions
    }

    /// Bytes one flush of `n` records occupies on PCIe.
    pub fn transfer_bytes(&self, n_records: usize) -> u64 {
        n_records as u64 * HirRecord::wire_bytes(self.pages_per_set, self.geom.counter_bits)
    }

    /// Validates the cache's structural invariants (the simulator's
    /// sanitizer hook): the way array matches the geometry, every valid
    /// way sits in the set its tag routes to, no set holds two ways with
    /// the same tag (so per-set occupancy never exceeds the
    /// associativity), counter vectors have one slot per page, and way
    /// stamps never exceed the logical clock.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.ways.len() != self.geom.entries as usize {
            return Err(format!(
                "HIR way array has {} slots, geometry says {}",
                self.ways.len(),
                self.geom.entries
            ));
        }
        let sets = self.geom.sets() as usize;
        let ways = self.geom.ways as usize;
        let mut occupancy = vec![0usize; sets];
        for (i, w) in self.ways.iter().enumerate() {
            if !w.valid {
                continue;
            }
            let home = w.tag.0 as usize % sets;
            if i / ways != home {
                return Err(format!(
                    "HIR way {i} holds tag {} which routes to set {home}, not set {}",
                    w.tag.0,
                    i / ways
                ));
            }
            occupancy[home] += 1;
            if w.counts.len() != self.pages_per_set as usize {
                return Err(format!(
                    "HIR way {i} has {} counters for {}-page sets",
                    w.counts.len(),
                    self.pages_per_set
                ));
            }
            if w.stamp > self.clock {
                return Err(format!(
                    "HIR way {i} stamp {} exceeds clock {}",
                    w.stamp, self.clock
                ));
            }
            if self.ways[home * ways..i]
                .iter()
                .any(|o| o.valid && o.tag == w.tag)
            {
                return Err(format!("HIR set {home} holds tag {} in two ways", w.tag.0));
            }
        }
        if let Some((set, &n)) = occupancy.iter().enumerate().find(|&(_, &n)| n > ways) {
            return Err(format!(
                "HIR set {set} occupancy {n} exceeds associativity {ways}"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_geom(entries: u32, ways: u32) -> HirGeometry {
        HirGeometry {
            entries,
            ways,
            counter_bits: 2,
        }
    }

    #[test]
    fn records_accumulate_and_saturate() {
        let mut hir = HirCache::new(small_geom(8, 2), 4);
        for _ in 0..5 {
            hir.record(PageId(0x100));
        }
        let recs = hir.flush();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].set, PageSetId(0x10));
        assert_eq!(recs[0].counts[0], 3); // 2-bit saturation
    }

    #[test]
    fn flush_preserves_first_touch_order() {
        let mut hir = HirCache::new(small_geom(16, 4), 4);
        // Touch sets 3, 1, 2 in that order, with re-touches interleaved.
        for set in [3u64, 1, 2, 3, 1] {
            hir.record(PageId(set << 4));
        }
        let order: Vec<u64> = hir.flush().iter().map(|r| r.set.0).collect();
        assert_eq!(order, vec![3, 1, 2]);
    }

    #[test]
    fn flush_empties_cache() {
        let mut hir = HirCache::new(small_geom(8, 2), 4);
        hir.record(PageId(7));
        assert_eq!(hir.touched_len(), 1);
        assert_eq!(hir.flush().len(), 1);
        assert_eq!(hir.touched_len(), 0);
        assert!(hir.flush().is_empty());
    }

    #[test]
    fn way_conflict_loses_victim_information() {
        // 2 sets x 1 way: sets 0 and 2 collide (both index 0).
        let mut hir = HirCache::new(small_geom(2, 1), 4);
        hir.record(PageId(0x00)); // set 0
        hir.record(PageId(0x20)); // set 2 -> displaces set 0
        assert_eq!(hir.conflict_evictions(), 1);
        let recs = hir.flush();
        // Set 0 is in the touch order but its entry was displaced.
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].set, PageSetId(2));
    }

    #[test]
    fn reinserted_tag_not_duplicated_in_flush() {
        let mut hir = HirCache::new(small_geom(2, 1), 4);
        hir.record(PageId(0x00)); // set 0
        hir.record(PageId(0x20)); // displaces set 0
        hir.record(PageId(0x01)); // set 0 re-inserted (displaces set 2)
        let recs = hir.flush();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].set, PageSetId(0));
        assert_eq!(recs[0].counts[1], 1);
    }

    #[test]
    fn distinct_offsets_tracked_separately() {
        let mut hir = HirCache::new(small_geom(8, 2), 2); // 4-page sets
        hir.record(PageId(0b100)); // set 1 offset 0
        hir.record(PageId(0b111)); // set 1 offset 3
        hir.record(PageId(0b111));
        let recs = hir.flush();
        assert_eq!(recs[0].counts, vec![1, 0, 0, 2]);
    }

    #[test]
    fn wire_size_matches_paper() {
        // Section V-C: 48-bit tag + 16 x 2-bit counters = 80 bits = 10 B.
        assert_eq!(HirRecord::wire_bytes(16, 2), 10);
        let hir = HirCache::new(HirGeometry::paper_default(), 4);
        assert_eq!(hir.transfer_bytes(150), 1500);
    }

    #[test]
    fn lru_way_is_displaced_on_conflict() {
        // 1 set x 2 ways; three distinct tags.
        let mut hir = HirCache::new(small_geom(2, 2), 4);
        hir.record(PageId(0x00)); // set 0
        hir.record(PageId(0x10)); // set 1
        hir.record(PageId(0x05)); // set 0 again (refresh)
        hir.record(PageId(0x20)); // set 2 -> displaces set 1 (LRU)
        let tags: Vec<u64> = hir.flush().iter().map(|r| r.set.0).collect();
        assert_eq!(tags, vec![0, 2]);
    }
}
