//! Dynamic adjustment (Section IV-E, Algorithm 1).
//!
//! One FIFO buffer per strategy remembers the pages that strategy evicted
//! over the last two intervals. A *wrong eviction* is a page fault on a
//! page still in the active strategy's FIFO. When the per-interval wrong
//! eviction count reaches one page set (16), HPE adjusts:
//!
//! * **regular** applications jump the MRU-C search point forward by 16 —
//!   unless the old partition held fewer than 4× page-set-size sets when
//!   memory first filled (small footprints, where older sets are *more*
//!   likely to be re-referenced);
//! * **irregular#1** applications stay with LRU (MRU-C would thrash on
//!   their bursty page walks);
//! * **irregular#2** applications switch between LRU and MRU-C. The paper
//!   selects "the strategy used for a longer time"; an untried strategy is
//!   explored first (without this, the longer-time comparison could never
//!   leave the initial strategy, contradicting the BFS trace in Fig. 13).

use std::collections::{HashMap, VecDeque};

use uvm_types::PageId;

use crate::classify::Category;
use crate::config::{HpeConfig, StrategyKind};

/// A fixed-depth FIFO of evicted pages with O(1) membership tests.
#[derive(Debug, Default)]
struct EvictionFifo {
    order: VecDeque<PageId>,
    counts: HashMap<PageId, u32>,
    depth: usize,
}

impl EvictionFifo {
    fn new(depth: usize) -> Self {
        EvictionFifo {
            order: VecDeque::with_capacity(depth),
            counts: HashMap::new(),
            depth,
        }
    }

    fn push(&mut self, page: PageId) {
        self.order.push_back(page);
        *self.counts.entry(page).or_insert(0) += 1;
        if self.order.len() > self.depth {
            if let Some(old) = self.order.pop_front() {
                if let Some(c) = self.counts.get_mut(&old) {
                    *c -= 1;
                    if *c == 0 {
                        self.counts.remove(&old);
                    }
                }
            }
        }
    }

    fn contains(&self, page: PageId) -> bool {
        self.counts.contains_key(&page)
    }
}

/// The dynamic-adjustment state machine.
#[derive(Debug)]
pub struct Adjuster {
    /// Dynamic adjustment reactions (Algorithm 1) are active.
    enabled: bool,
    /// A strategy was forced by configuration; classification must not
    /// override it (sensitivity-study mode).
    forced: bool,
    trigger: u32,
    search_jump: u32,
    small_footprint_sets: u32,
    category: Option<Category>,
    strategy: StrategyKind,
    jump: u32,
    small_footprint: bool,
    fifo_lru: EvictionFifo,
    fifo_mruc: EvictionFifo,
    wrong_count: u32,
    intervals_lru: u64,
    intervals_mruc: u64,
    switches: u64,
    timeline: Vec<(u64, StrategyKind)>,
    jump_events: Vec<(u64, u32)>,
}

impl Adjuster {
    /// Creates the adjuster from an HPE configuration.
    pub fn new(cfg: &HpeConfig) -> Self {
        let initial = cfg.forced_strategy.unwrap_or(StrategyKind::Lru);
        Adjuster {
            enabled: cfg.dynamic_adjustment && cfg.forced_strategy.is_none(),
            forced: cfg.forced_strategy.is_some(),
            trigger: cfg.wrong_eviction_trigger,
            search_jump: cfg.search_jump,
            small_footprint_sets: cfg.small_footprint_sets,
            category: None,
            strategy: initial,
            jump: 0,
            small_footprint: false,
            fifo_lru: EvictionFifo::new(cfg.fifo_depth as usize),
            fifo_mruc: EvictionFifo::new(cfg.fifo_depth as usize),
            wrong_count: 0,
            intervals_lru: 0,
            intervals_mruc: 0,
            switches: 0,
            timeline: vec![(0, initial)],
            jump_events: Vec::new(),
        }
    }

    /// The active eviction strategy.
    pub fn strategy(&self) -> StrategyKind {
        self.strategy
    }

    /// The current MRU-C search-point jump.
    pub fn jump(&self) -> u32 {
        self.jump
    }

    /// Number of strategy switches performed.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Intervals spent under each strategy `(LRU, MRU-C)`.
    pub fn interval_usage(&self) -> (u64, u64) {
        (self.intervals_lru, self.intervals_mruc)
    }

    /// `(fault_number, strategy)` at start and at every switch (Fig. 13).
    pub fn timeline(&self) -> &[(u64, StrategyKind)] {
        &self.timeline
    }

    /// `(fault_number, new_jump)` at every search-point jump (Fig. 13's
    /// "adjust search point" events).
    pub fn jump_events(&self) -> &[(u64, u32)] {
        &self.jump_events
    }

    /// Installs the classification result (called at first memory-full).
    /// `old_sets` is the number of page sets in the old partition at that
    /// moment, gating the regular-application jump rule.
    pub fn set_category(&mut self, category: Category, old_sets: usize, fault_num: u64) {
        self.category = Some(category);
        // The initial strategy follows the classification unless the
        // configuration forced one. This is independent of whether the
        // dynamic-adjustment *reactions* are enabled.
        if !self.forced && self.timeline.len() == 1 && self.timeline[0].0 == 0 {
            let s = match category {
                Category::Regular => StrategyKind::MruC,
                Category::Irregular1 | Category::Irregular2 => StrategyKind::Lru,
            };
            self.strategy = s;
            self.timeline[0] = (fault_num, s);
        }
        self.small_footprint = (old_sets as u32) < self.small_footprint_sets;
    }

    /// Records an eviction performed by the active strategy.
    pub fn on_eviction(&mut self, page: PageId) {
        match self.strategy {
            StrategyKind::Lru => self.fifo_lru.push(page),
            StrategyKind::MruC => self.fifo_mruc.push(page),
        }
    }

    /// Checks a page fault against the active strategy's FIFO; triggers an
    /// adjustment when the wrong-eviction count reaches the threshold.
    pub fn on_fault(&mut self, page: PageId, fault_num: u64) {
        if !self.enabled {
            return;
        }
        let wrong = match self.strategy {
            StrategyKind::Lru => self.fifo_lru.contains(page),
            StrategyKind::MruC => self.fifo_mruc.contains(page),
        };
        if !wrong {
            return;
        }
        self.count_wrong(fault_num);
    }

    /// Counts a wrong eviction directly, bypassing the FIFO membership
    /// test. Used for injected (spurious) wrong-eviction signals, which
    /// model a corrupted fault report reaching the driver: the adjustment
    /// machinery must react exactly as it would to a genuine one.
    pub fn force_wrong(&mut self, fault_num: u64) {
        if !self.enabled {
            return;
        }
        self.count_wrong(fault_num);
    }

    fn count_wrong(&mut self, fault_num: u64) {
        self.wrong_count += 1;
        if self.wrong_count >= self.trigger {
            self.wrong_count = 0;
            self.adjust(fault_num);
        }
    }

    /// Ends the current interval: credits it to the active strategy and
    /// resets the wrong-eviction counter.
    pub fn end_interval(&mut self) {
        match self.strategy {
            StrategyKind::Lru => self.intervals_lru += 1,
            StrategyKind::MruC => self.intervals_mruc += 1,
        }
        self.wrong_count = 0;
    }

    fn adjust(&mut self, fault_num: u64) {
        match self.category {
            Some(Category::Regular) if !self.small_footprint => {
                self.jump += self.search_jump;
                self.jump_events.push((fault_num, self.jump));
            }
            Some(Category::Regular) | Some(Category::Irregular1) => {}
            Some(Category::Irregular2) => {
                let (cur, other) = match self.strategy {
                    StrategyKind::Lru => (self.intervals_lru, self.intervals_mruc),
                    StrategyKind::MruC => (self.intervals_mruc, self.intervals_lru),
                };
                let switch = other == 0 || other >= cur;
                if switch {
                    self.strategy = match self.strategy {
                        StrategyKind::Lru => StrategyKind::MruC,
                        StrategyKind::MruC => StrategyKind::Lru,
                    };
                    self.switches += 1;
                    self.timeline.push((fault_num, self.strategy));
                }
            }
            None => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HpeConfig {
        HpeConfig::paper_default()
    }

    fn adjuster_with(category: Category, old_sets: usize) -> Adjuster {
        let mut a = Adjuster::new(&cfg());
        a.set_category(category, old_sets, 0);
        a
    }

    /// Drives `n` wrong evictions: evict then re-fault the same page.
    fn wrong_evictions(a: &mut Adjuster, n: u32, fault_base: u64) {
        for i in 0..n {
            let p = PageId(1000 + u64::from(i));
            a.on_eviction(p);
            a.on_fault(p, fault_base + u64::from(i));
        }
    }

    #[test]
    fn classification_sets_initial_strategy() {
        assert_eq!(
            adjuster_with(Category::Regular, 100).strategy(),
            StrategyKind::MruC
        );
        assert_eq!(
            adjuster_with(Category::Irregular1, 100).strategy(),
            StrategyKind::Lru
        );
        assert_eq!(
            adjuster_with(Category::Irregular2, 100).strategy(),
            StrategyKind::Lru
        );
    }

    #[test]
    fn regular_large_footprint_jumps_search_point() {
        let mut a = adjuster_with(Category::Regular, 100);
        wrong_evictions(&mut a, 16, 0);
        assert_eq!(a.jump(), 16);
        assert_eq!(a.strategy(), StrategyKind::MruC);
        wrong_evictions(&mut a, 16, 100);
        assert_eq!(a.jump(), 32); // jumps accumulate
        assert_eq!(a.jump_events().len(), 2);
        assert_eq!(a.switches(), 0);
    }

    #[test]
    fn regular_small_footprint_never_jumps() {
        let mut a = adjuster_with(Category::Regular, 10); // < 64 sets
        wrong_evictions(&mut a, 48, 0);
        assert_eq!(a.jump(), 0);
    }

    #[test]
    fn irregular1_never_switches() {
        let mut a = adjuster_with(Category::Irregular1, 100);
        wrong_evictions(&mut a, 64, 0);
        assert_eq!(a.strategy(), StrategyKind::Lru);
        assert_eq!(a.switches(), 0);
    }

    #[test]
    fn irregular2_explores_then_prefers_longer_used() {
        let mut a = adjuster_with(Category::Irregular2, 100);
        // A few intervals under LRU.
        for _ in 0..5 {
            a.end_interval();
        }
        // Trigger: MRU-C untried -> explore it.
        wrong_evictions(&mut a, 16, 0);
        assert_eq!(a.strategy(), StrategyKind::MruC);
        assert_eq!(a.switches(), 1);
        // MRU-C runs only one interval, then triggers: LRU has been used
        // longer (5 > 1) -> switch back.
        a.end_interval();
        wrong_evictions(&mut a, 16, 100);
        assert_eq!(a.strategy(), StrategyKind::Lru);
        // Now LRU triggers again; MRU-C (1) < LRU (5) -> stay LRU.
        wrong_evictions(&mut a, 16, 200);
        assert_eq!(a.strategy(), StrategyKind::Lru);
        assert_eq!(a.switches(), 2);
    }

    #[test]
    fn wrong_count_resets_each_interval() {
        let mut a = adjuster_with(Category::Regular, 100);
        wrong_evictions(&mut a, 15, 0);
        a.end_interval();
        wrong_evictions(&mut a, 15, 100);
        assert_eq!(a.jump(), 0, "counts must not carry across intervals");
    }

    #[test]
    fn fifo_only_remembers_last_two_intervals_of_evictions() {
        let mut a = adjuster_with(Category::Regular, 100);
        let p = PageId(5);
        a.on_eviction(p);
        // Push 128 more evictions to overflow the FIFO (depth 128).
        for i in 0..128u64 {
            a.on_eviction(PageId(100 + i));
        }
        // p is gone from the FIFO: its re-fault is not "wrong".
        for _ in 0..32 {
            a.on_fault(p, 0);
        }
        assert_eq!(a.jump(), 0);
    }

    #[test]
    fn per_strategy_fifos_are_independent() {
        let mut a = adjuster_with(Category::Irregular2, 100);
        // Evictions under LRU fill the LRU FIFO; after a switch to MRU-C,
        // re-faults of those pages do not count against MRU-C.
        for i in 0..16u64 {
            a.on_eviction(PageId(i));
        }
        // Force a switch by wrong evictions.
        wrong_evictions(&mut a, 16, 0);
        assert_eq!(a.strategy(), StrategyKind::MruC);
        let switches_before = a.switches();
        for i in 0..16u64 {
            a.on_fault(PageId(i), 50 + i);
        }
        assert_eq!(a.switches(), switches_before);
    }

    #[test]
    fn disabled_adjustment_is_inert() {
        let mut c = cfg();
        c.dynamic_adjustment = false;
        let mut a = Adjuster::new(&c);
        a.set_category(Category::Irregular2, 100, 0);
        wrong_evictions(&mut a, 64, 0);
        assert_eq!(a.strategy(), StrategyKind::Lru);
        assert_eq!(a.switches(), 0);
    }

    #[test]
    fn forced_strategy_overrides_classification() {
        let mut c = cfg();
        c.forced_strategy = Some(StrategyKind::MruC);
        let mut a = Adjuster::new(&c);
        a.set_category(Category::Irregular2, 100, 0);
        assert_eq!(a.strategy(), StrategyKind::MruC);
        wrong_evictions(&mut a, 64, 0);
        assert_eq!(a.strategy(), StrategyKind::MruC);
    }

    #[test]
    fn spurious_signals_drive_adjustment_like_real_ones() {
        let mut a = adjuster_with(Category::Regular, 100);
        for i in 0..16 {
            a.force_wrong(i);
        }
        assert_eq!(a.jump(), 16, "16 spurious signals trigger one jump");
    }

    #[test]
    fn spurious_signals_ignored_when_adjustment_disabled() {
        let mut c = cfg();
        c.dynamic_adjustment = false;
        let mut a = Adjuster::new(&c);
        a.set_category(Category::Regular, 100, 0);
        for i in 0..64 {
            a.force_wrong(i);
        }
        assert_eq!(a.jump(), 0);
    }

    #[test]
    fn timeline_records_switches() {
        let mut a = adjuster_with(Category::Irregular2, 100);
        wrong_evictions(&mut a, 16, 7);
        let tl = a.timeline();
        assert_eq!(tl.len(), 2);
        assert_eq!(tl[1].1, StrategyKind::MruC);
    }
}
