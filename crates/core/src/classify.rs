//! Statistics-based application classification (Section IV-D, Table III).
//!
//! When GPU memory first fills, HPE traverses the page set chain, counts
//! the page sets whose counters are *regular* (divisible by the page set
//! size) vs. *irregular*, and *small* (1–2× set size) vs. *large* (3–4×),
//! then computes
//!
//! * `ratio₁ = irregular / regular`
//! * `ratio₂ = large-and-regular / small-and-regular`
//!
//! and classifies the application per Table III.

use crate::chain::CounterStats;

/// The three application categories of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Most page sets have a small and regular counter — types I–III
    /// (eviction strategy: MRU-C).
    Regular,
    /// Most page sets have a large and regular counter — region-moving and
    /// windowed workloads (eviction strategy: LRU, never switched).
    Irregular1,
    /// Most page sets have an irregular counter (eviction strategy: LRU,
    /// switchable by dynamic adjustment).
    Irregular2,
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Category::Regular => "regular",
            Category::Irregular1 => "irregular#1",
            Category::Irregular2 => "irregular#2",
        })
    }
}

/// A classification outcome, retaining the ratios for reporting (Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Classification {
    /// `irregular / regular` (infinite if no regular counters).
    pub ratio1: f64,
    /// `large-and-regular / small-and-regular` (infinite if no small ones
    /// but some large ones; zero if neither).
    pub ratio2: f64,
    /// The resulting category.
    pub category: Category,
    /// The raw counter statistics.
    pub counts: CounterStats,
}

/// Classifies an application from its chain counter statistics.
///
/// # Examples
///
/// ```
/// use hpe_core::{classify, Category, CounterStats};
///
/// let stats = CounterStats {
///     regular: 95,
///     irregular: 5,
///     small_regular: 90,
///     large_regular: 5,
/// };
/// let c = classify(&stats, 0.3, 2.0);
/// assert_eq!(c.category, Category::Regular);
/// ```
pub fn classify(
    counts: &CounterStats,
    ratio1_threshold: f64,
    ratio2_threshold: f64,
) -> Classification {
    let ratio1 = if counts.regular == 0 {
        if counts.irregular == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        counts.irregular as f64 / counts.regular as f64
    };
    let ratio2 = if counts.small_regular == 0 {
        if counts.large_regular == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        counts.large_regular as f64 / counts.small_regular as f64
    };
    let category = if ratio1 > ratio1_threshold {
        Category::Irregular2
    } else if ratio2 >= ratio2_threshold {
        Category::Irregular1
    } else {
        Category::Regular
    };
    Classification {
        ratio1,
        ratio2,
        category,
        counts: *counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(regular: u64, irregular: u64, small: u64, large: u64) -> CounterStats {
        CounterStats {
            regular,
            irregular,
            small_regular: small,
            large_regular: large,
        }
    }

    #[test]
    fn table3_regular() {
        let c = classify(&stats(95, 5, 90, 5), 0.3, 2.0);
        assert_eq!(c.category, Category::Regular);
        assert!(c.ratio1 < 0.3);
        assert!(c.ratio2 < 2.0);
    }

    #[test]
    fn table3_irregular1() {
        // Most sets large-and-regular: ratio1 small, ratio2 >= 2.
        let c = classify(&stats(100, 10, 20, 80), 0.3, 2.0);
        assert_eq!(c.category, Category::Irregular1);
        assert!((c.ratio2 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn table3_irregular2() {
        // Most sets irregular: ratio1 above threshold regardless of ratio2.
        let c = classify(&stats(40, 60, 10, 30), 0.3, 2.0);
        assert_eq!(c.category, Category::Irregular2);
        assert!((c.ratio1 - 1.5).abs() < 1e-12);
    }

    #[test]
    fn boundary_cases() {
        // ratio1 exactly at the threshold is NOT irregular#2 (Table III
        // uses <= threshold for the regular rows).
        let c = classify(&stats(100, 30, 100, 0), 0.3, 2.0);
        assert_eq!(c.category, Category::Regular);
        // ratio2 exactly 2 is irregular#1 (>= 2).
        let c = classify(&stats(100, 0, 30, 60), 0.3, 2.0);
        assert_eq!(c.category, Category::Irregular1);
    }

    #[test]
    fn degenerate_counts() {
        // No regular counters at all: infinite ratio1 -> irregular#2.
        let c = classify(&stats(0, 10, 0, 0), 0.3, 2.0);
        assert_eq!(c.category, Category::Irregular2);
        assert!(c.ratio1.is_infinite());
        // No counters at all: everything zero -> regular.
        let c = classify(&stats(0, 0, 0, 0), 0.3, 2.0);
        assert_eq!(c.category, Category::Regular);
        assert_eq!(c.ratio1, 0.0);
        assert_eq!(c.ratio2, 0.0);
        // Large but no small: infinite ratio2 -> irregular#1.
        let c = classify(&stats(50, 0, 0, 50), 0.3, 2.0);
        assert_eq!(c.category, Category::Irregular1);
        assert!(c.ratio2.is_infinite());
    }

    #[test]
    fn category_displays() {
        assert_eq!(Category::Regular.to_string(), "regular");
        assert_eq!(Category::Irregular1.to_string(), "irregular#1");
        assert_eq!(Category::Irregular2.to_string(), "irregular#2");
    }
}
