//! The page set chain (Section IV-C): HPE's driver-side metadata.
//!
//! The chain holds one entry per *page set* (a group of contiguous virtual
//! pages), partitioned by recency into three segments:
//!
//! * **old** — sets not touched in the last or current interval,
//! * **middle** — sets touched in the previous interval,
//! * **new** — sets touched in the current interval.
//!
//! Every `interval_len` page faults the partitions rotate: middle drains
//! into old, new becomes middle. Within an interval, once a set has been
//! placed in the new partition, further touches do not move it again.
//!
//! Each entry carries the page set tag, a saturating touch counter, a bit
//! vector of *faulted* pages (only page faults update it), and a division
//! flag. When a set's counter saturates with some pages never faulted, the
//! set is **divided**: the faulted pages remain in the current entry (the
//! *primary*) and the untouched pages form a *secondary* set when later
//! touched. The division result is remembered in a history buffer so
//! re-migrated pages route to the right half (Fig. 6).

use std::collections::HashMap;

use uvm_policies::chain::RecencyChain;
use uvm_types::{PageId, PageSetId};

use crate::config::{HpeConfig, StrategyKind};

/// Key of a chain entry: the page set plus which half of a divided set it
/// represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SetKey {
    /// The page set address.
    pub set: PageSetId,
    /// `true` for the secondary half of a divided set.
    pub secondary: bool,
}

/// One chain entry (Fig. 5: tag, saturating counter, bit vector, flag).
#[derive(Debug, Clone)]
pub struct SetEntry {
    /// Entry key (tag + half).
    pub key: SetKey,
    /// Touch counter, saturating at the configured maximum (64).
    pub counter: u32,
    /// Pages of the set that have *faulted* (bit per page offset; only
    /// faults update this, Section IV-C note 1).
    pub bits: u64,
    /// Pages of the set currently resident in GPU memory.
    pub resident: u64,
    /// Whether this set has been divided.
    pub divided: bool,
}

impl SetEntry {
    /// Lowest-offset resident page, if any (HPE evicts in address order).
    fn first_resident_offset(&self) -> Option<u32> {
        if self.resident == 0 {
            None
        } else {
            Some(self.resident.trailing_zeros())
        }
    }
}

/// Which partition a selection came from (diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partition {
    /// The old partition (preferred source of eviction candidates).
    Old,
    /// The middle partition.
    Middle,
    /// The new partition (last resort).
    New,
}

/// Result of a victim selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Selection {
    /// The page to evict.
    pub page: PageId,
    /// Chain-entry comparisons performed (Fig. 14's search overhead).
    pub comparisons: u64,
    /// Partition the victim came from.
    pub partition: Partition,
}

/// Aggregate counter statistics for classification (Section IV-D).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterStats {
    /// Sets whose counter is divisible by the page set size.
    pub regular: u64,
    /// Sets whose counter is not divisible by the page set size.
    pub irregular: u64,
    /// Sets with counter equal to 1x or 2x the page set size.
    pub small_regular: u64,
    /// Sets with counter equal to 3x or 4x the page set size.
    pub large_regular: u64,
}

/// The page set chain.
#[derive(Debug)]
pub struct PageSetChain {
    set_shift: u32,
    set_size: u32,
    counter_max: u32,
    division_enabled: bool,
    entries: HashMap<SetKey, SetEntry>,
    old: RecencyChain<SetKey>,
    middle: RecencyChain<SetKey>,
    new: RecencyChain<SetKey>,
    /// History buffer: primary bit masks from first divisions.
    divisions: HashMap<PageSetId, u64>,
    divided_count: u64,
}

impl PageSetChain {
    /// Creates an empty chain from an HPE configuration.
    pub fn new(cfg: &HpeConfig) -> Self {
        PageSetChain {
            set_shift: cfg.page_set_shift(),
            set_size: cfg.page_set_size,
            counter_max: cfg.counter_max,
            division_enabled: cfg.enable_division,
            entries: HashMap::new(),
            old: RecencyChain::new(),
            middle: RecencyChain::new(),
            new: RecencyChain::new(),
            divisions: HashMap::new(),
            divided_count: 0,
        }
    }

    fn full_mask(&self) -> u64 {
        if self.set_size == 64 {
            u64::MAX
        } else {
            (1u64 << self.set_size) - 1
        }
    }

    /// Routes a page to its entry key via the history buffer (Fig. 6
    /// steps 1–4) and returns its offset within the set.
    pub fn route(&self, page: PageId) -> (SetKey, u32) {
        let set = page.page_set(self.set_shift);
        let offset = page.set_offset(self.set_shift);
        let secondary = match self.divisions.get(&set) {
            Some(primary_bits) => primary_bits & (1u64 << offset) == 0,
            None => false,
        };
        (SetKey { set, secondary }, offset)
    }

    /// Records `count` touches to `page` (Fig. 6 step 5): updates or
    /// creates the entry, moves it to the new partition's MRU position if
    /// it was in old or middle, and checks the division rule.
    pub fn touch(&mut self, page: PageId, count: u32, is_fault: bool) {
        let (key, offset) = self.route(page);
        let mask = 1u64 << offset;
        let counter_max = self.counter_max;
        let entry = self.entries.entry(key).or_insert_with(|| SetEntry {
            key,
            counter: 0,
            bits: 0,
            resident: 0,
            divided: false,
        });
        entry.counter = (entry.counter + count).min(counter_max);
        if is_fault {
            entry.bits |= mask;
            entry.resident |= mask;
        }

        // Movement: old/middle -> MRU of new; entries already in new stay
        // where they are (no re-movement within an interval).
        if !self.new.contains(&key) {
            self.old.remove(&key);
            self.middle.remove(&key);
            self.new.insert_mru(key);
        }

        // Division check (Section IV-C): when the counter saturates with
        // some pages never faulted, split the set. Only the first division
        // result is kept; secondaries never divide again.
        if self.division_enabled && !key.secondary {
            let full = self.full_mask();
            let entry = self.entries.get_mut(&key).expect("just inserted"); // lint:allow(unwrap) — inserted two lines up
            if entry.counter >= counter_max
                && !entry.divided
                && !self.divisions.contains_key(&key.set)
                && entry.bits != full
                && entry.bits != 0
            {
                self.divisions.insert(key.set, entry.bits);
                entry.divided = true;
                self.divided_count += 1;
            }
        }
    }

    /// Rotates the partitions at the end of an interval: middle drains
    /// into old (preserving recency order), new becomes middle.
    pub fn rotate_interval(&mut self) {
        let mid: Vec<SetKey> = self.middle.iter().copied().collect();
        for k in mid {
            self.old.insert_mru(k);
        }
        self.middle = std::mem::take(&mut self.new);
    }

    /// Selects a victim page under `strategy` with the given MRU-C search
    /// jump, following the partition preference old → middle → new.
    /// Returns `None` only if no resident page is tracked.
    pub fn select_victim(&mut self, strategy: StrategyKind, jump: u32) -> Option<Selection> {
        for partition in [Partition::Old, Partition::Middle, Partition::New] {
            if let Some(sel) = self.select_from(partition, strategy, jump) {
                return Some(sel);
            }
        }
        None
    }

    fn select_from(
        &mut self,
        partition: Partition,
        strategy: StrategyKind,
        jump: u32,
    ) -> Option<Selection> {
        let mut comparisons = 0u64;
        // Lazily drop entries with no resident pages (evicted sets whose
        // stale HIR records re-created them).
        let mut zombies: Vec<SetKey> = Vec::new();
        let chosen: Option<SetKey> = {
            let chain = match partition {
                Partition::Old => &self.old,
                Partition::Middle => &self.middle,
                Partition::New => &self.new,
            };
            let entries = &self.entries;
            let live = |k: &SetKey| entries.get(k).map(|e| e.resident != 0).unwrap_or(false);
            match strategy {
                StrategyKind::Lru => {
                    let mut found = None;
                    for k in chain.iter() {
                        comparisons += 1;
                        if live(k) {
                            found = Some(*k);
                            break;
                        }
                        zombies.push(*k);
                    }
                    found
                }
                StrategyKind::MruC => {
                    // Search from the MRU position (offset by the jump,
                    // wrapping — the adjusted search point must still be
                    // able to reach every candidate) for a set whose
                    // counter equals the page set size; if all counters
                    // exceed the set size, fall back to the minimum
                    // counter; if neither exists, the minimum counter
                    // overall.
                    let mut exact: Option<SetKey> = None;
                    let mut min_above: Option<(u32, SetKey)> = None;
                    let mut min_any: Option<(u32, SetKey)> = None;
                    let len = chain.len();
                    let skip = if len == 0 { 0 } else { jump as usize % len };
                    for k in chain
                        .iter_rev()
                        .skip(skip)
                        .chain(chain.iter_rev().take(skip))
                    {
                        comparisons += 1;
                        if !live(k) {
                            zombies.push(*k);
                            continue;
                        }
                        let c = self.entries[k].counter;
                        if c == self.set_size {
                            exact = Some(*k);
                            break;
                        }
                        if c > self.set_size && min_above.map(|(m, _)| c < m).unwrap_or(true) {
                            min_above = Some((c, *k));
                        }
                        if min_any.map(|(m, _)| c < m).unwrap_or(true) {
                            min_any = Some((c, *k));
                        }
                    }
                    exact
                        .or(min_above.map(|(_, k)| k))
                        .or(min_any.map(|(_, k)| k))
                }
            }
        };
        for z in zombies {
            self.remove_key(z);
        }
        let key = chosen?;
        let entry = self.entries.get_mut(&key).expect("chosen entry exists"); // lint:allow(unwrap) — key came from the live scan above
        let offset = entry
            .first_resident_offset()
            .expect("chosen entry has a resident page"); // lint:allow(unwrap) — zombies were pruned above
        entry.resident &= !(1u64 << offset);
        let page = key.set.page_at(self.set_shift, offset);
        if entry.resident == 0 {
            self.remove_key(key);
        }
        Some(Selection {
            page,
            comparisons,
            partition,
        })
    }

    fn remove_key(&mut self, key: SetKey) {
        self.entries.remove(&key);
        if !self.old.remove(&key) && !self.middle.remove(&key) {
            self.new.remove(&key);
        }
    }

    /// Counter statistics over all live entries, for classification.
    pub fn counter_stats(&self) -> CounterStats {
        let s = self.set_size;
        let mut st = CounterStats::default();
        // lint:allow(hash-iteration) — commutative accumulation
        for e in self.entries.values() {
            if e.counter == 0 {
                continue;
            }
            if e.counter % s == 0 {
                st.regular += 1;
                if e.counter == s || e.counter == 2 * s {
                    st.small_regular += 1;
                } else if e.counter == 3 * s || e.counter == 4 * s {
                    st.large_regular += 1;
                }
            } else {
                st.irregular += 1;
            }
        }
        st
    }

    /// Number of entries in the old partition.
    pub fn old_len(&self) -> usize {
        self.old.len()
    }

    /// Number of entries in the middle partition.
    pub fn middle_len(&self) -> usize {
        self.middle.len()
    }

    /// Number of entries in the new partition.
    pub fn new_len(&self) -> usize {
        self.new.len()
    }

    /// Total number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the chain has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of page sets divided so far.
    pub fn divided_count(&self) -> u64 {
        self.divided_count
    }

    /// The recorded primary bit mask for `set`, if it was divided.
    pub fn division_of(&self, set: PageSetId) -> Option<u64> {
        self.divisions.get(&set).copied()
    }

    /// Looks up an entry (diagnostics/tests).
    pub fn entry(&self, key: SetKey) -> Option<&SetEntry> {
        self.entries.get(&key)
    }

    /// Iterates all live entries in unspecified order (diagnostics).
    pub fn iter_entries(&self) -> impl Iterator<Item = &SetEntry> {
        self.entries.values() // lint:allow(hash-iteration) — order documented as unspecified
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HpeConfig {
        HpeConfig::paper_default()
    }

    fn chain() -> PageSetChain {
        PageSetChain::new(&cfg())
    }

    fn key(set: u64) -> SetKey {
        SetKey {
            set: PageSetId(set),
            secondary: false,
        }
    }

    /// Faults all 16 pages of `set`.
    fn fault_set(c: &mut PageSetChain, set: u64) {
        for p in PageSetId(set).pages(4) {
            c.touch(p, 1, true);
        }
    }

    #[test]
    fn touch_creates_entry_in_new_partition() {
        let mut c = chain();
        c.touch(PageId(0x35), 1, true);
        assert_eq!(c.new_len(), 1);
        assert_eq!(c.old_len(), 0);
        let e = c.entry(key(3)).unwrap();
        assert_eq!(e.counter, 1);
        assert_eq!(e.bits, 1 << 5);
        assert_eq!(e.resident, 1 << 5);
    }

    #[test]
    fn hits_update_counter_but_not_bits() {
        let mut c = chain();
        c.touch(PageId(0x35), 3, false);
        let e = c.entry(key(3)).unwrap();
        assert_eq!(e.counter, 3);
        assert_eq!(e.bits, 0);
        assert_eq!(e.resident, 0);
    }

    #[test]
    fn counter_saturates_at_64() {
        let mut c = chain();
        for _ in 0..40 {
            c.touch(PageId(0x10), 3, false);
        }
        assert_eq!(c.entry(key(1)).unwrap().counter, 64);
    }

    #[test]
    fn rotation_moves_partitions() {
        let mut c = chain();
        c.touch(PageId(0x10), 1, true); // set 1 in new
        c.rotate_interval();
        assert_eq!((c.old_len(), c.middle_len(), c.new_len()), (0, 1, 0));
        c.touch(PageId(0x20), 1, true); // set 2 in new
        c.rotate_interval();
        assert_eq!((c.old_len(), c.middle_len(), c.new_len()), (1, 1, 0));
        // Touching the old entry moves it back to new.
        c.touch(PageId(0x11), 1, true);
        assert_eq!((c.old_len(), c.middle_len(), c.new_len()), (0, 1, 1));
    }

    #[test]
    fn rotation_preserves_recency_order_into_old() {
        let mut c = chain();
        c.touch(PageId(0x10), 1, true);
        c.touch(PageId(0x20), 1, true);
        c.rotate_interval();
        c.rotate_interval();
        // Old now holds sets 1 (older) then 2 (more recent).
        c.touch(PageId(0x30), 1, true);
        fault_set(&mut c, 3);
        // LRU selection from old must pick set 1 first.
        let sel = c.select_victim(StrategyKind::Lru, 0).unwrap();
        assert_eq!(sel.page.page_set(4), PageSetId(1));
        assert_eq!(sel.partition, Partition::Old);
    }

    #[test]
    fn eviction_takes_pages_in_address_order_until_set_empty() {
        let mut c = chain();
        fault_set(&mut c, 5);
        c.rotate_interval();
        c.rotate_interval();
        for i in 0..16u64 {
            let sel = c.select_victim(StrategyKind::Lru, 0).unwrap();
            assert_eq!(sel.page, PageId(0x50 + i), "eviction {i}");
        }
        // All pages evicted: entry removed.
        assert!(c.is_empty());
        assert!(c.select_victim(StrategyKind::Lru, 0).is_none());
    }

    #[test]
    fn mruc_prefers_counter_equal_set_size_from_mru() {
        let mut c = chain();
        // Three sets in old: set 1 (counter 16), set 2 (counter 64),
        // set 3 (counter 16). MRU order in old: 1 (oldest) .. 3 (newest).
        for s in [1u64, 2, 3] {
            fault_set(&mut c, s);
        }
        for _ in 0..48 {
            c.touch(PageId(0x20), 1, false);
        }
        c.rotate_interval();
        c.rotate_interval();
        let sel = c.select_victim(StrategyKind::MruC, 0).unwrap();
        // Scan from MRU: set 3 has counter 16 -> selected immediately.
        assert_eq!(sel.page.page_set(4), PageSetId(3));
        assert_eq!(sel.comparisons, 1);
    }

    #[test]
    fn mruc_falls_back_to_minimum_counter() {
        let mut c = chain();
        for s in [1u64, 2] {
            fault_set(&mut c, s);
        }
        // Push both counters above the set size: 1 -> 32, 2 -> 64.
        for p in PageSetId(1).pages(4) {
            c.touch(p, 1, false);
        }
        for _ in 0..48 {
            c.touch(PageId(0x20), 1, false);
        }
        c.rotate_interval();
        c.rotate_interval();
        let sel = c.select_victim(StrategyKind::MruC, 0).unwrap();
        assert_eq!(sel.page.page_set(4), PageSetId(1)); // min counter 32
        assert_eq!(sel.comparisons, 2); // full scan required
    }

    #[test]
    fn mruc_jump_skips_entries() {
        let mut c = chain();
        for s in 1..=4u64 {
            fault_set(&mut c, s);
        }
        c.rotate_interval();
        c.rotate_interval();
        // MRU order in old: 1, 2, 3, 4 (4 = MRU). Jump 2 skips 4 and 3.
        let sel = c.select_victim(StrategyKind::MruC, 2).unwrap();
        assert_eq!(sel.page.page_set(4), PageSetId(2));
        // Jumps wrap around the partition (100 % 4 = 0 -> MRU first).
        let sel = c.select_victim(StrategyKind::MruC, 100).unwrap();
        assert_eq!(sel.page.page_set(4), PageSetId(4));
        // A jump one short of the length reaches the LRU entry first.
        let sel = c.select_victim(StrategyKind::MruC, 3).unwrap();
        assert_eq!(sel.page.page_set(4), PageSetId(1));
    }

    #[test]
    fn partition_preference_old_middle_new() {
        let mut c = chain();
        fault_set(&mut c, 1); // will be in new
        let sel = c.select_victim(StrategyKind::Lru, 0).unwrap();
        assert_eq!(sel.partition, Partition::New);
        c.rotate_interval();
        let sel = c.select_victim(StrategyKind::Lru, 0).unwrap();
        assert_eq!(sel.partition, Partition::Middle);
        c.rotate_interval();
        let sel = c.select_victim(StrategyKind::Lru, 0).unwrap();
        assert_eq!(sel.partition, Partition::Old);
    }

    #[test]
    fn division_splits_partially_faulted_set() {
        let mut c = chain();
        // Fault only even offsets of set 7, then drive the counter to 64
        // with hits.
        for off in (0..16u32).step_by(2) {
            c.touch(PageSetId(7).page_at(4, off), 1, true);
        }
        for _ in 0..56 {
            c.touch(PageId(0x70), 1, false);
        }
        assert_eq!(c.divided_count(), 1);
        let primary_bits = c.division_of(PageSetId(7)).unwrap();
        assert_eq!(primary_bits, 0x5555);
        // An odd page now routes to the secondary entry.
        let (k, off) = c.route(PageId(0x71));
        assert!(k.secondary);
        assert_eq!(off, 1);
        c.touch(PageId(0x71), 1, true);
        assert!(c
            .entry(SetKey {
                set: PageSetId(7),
                secondary: true
            })
            .is_some());
        // Evicting everything from the primary leaves the secondary alive.
        c.rotate_interval();
        c.rotate_interval();
        let mut primary_evictions = 0;
        while let Some(sel) = c.select_victim(StrategyKind::Lru, 0) {
            if !sel.page.0 % 2 == 0 {
                break;
            }
            primary_evictions += 1;
            if primary_evictions > 32 {
                break;
            }
        }
        assert!(c.division_of(PageSetId(7)).is_some(), "history kept");
    }

    #[test]
    fn fully_faulted_set_does_not_divide() {
        let mut c = chain();
        fault_set(&mut c, 3);
        for _ in 0..48 {
            c.touch(PageId(0x30), 1, false);
        }
        assert_eq!(c.entry(key(3)).unwrap().counter, 64);
        assert_eq!(c.divided_count(), 0);
    }

    #[test]
    fn first_division_result_is_kept() {
        let mut c = chain();
        // Divide with only offset 0 faulted.
        c.touch(PageId(0x80), 1, true);
        for _ in 0..63 {
            c.touch(PageId(0x80), 1, false);
        }
        assert_eq!(c.division_of(PageSetId(8)), Some(1));
        // Evict the lone primary page; entry removed, history kept.
        let sel = c.select_victim(StrategyKind::Lru, 0).unwrap();
        assert_eq!(sel.page, PageId(0x80));
        // Re-fault more pages and saturate again: division must not change.
        c.touch(PageId(0x80), 1, true);
        c.touch(PageId(0x82), 1, true); // secondary (offset 2)
        for _ in 0..70 {
            c.touch(PageId(0x80), 1, false);
        }
        assert_eq!(c.division_of(PageSetId(8)), Some(1));
        assert_eq!(c.divided_count(), 1);
    }

    #[test]
    fn zombie_entries_are_lazily_removed() {
        let mut c = chain();
        // Hit-only entry (stale HIR record for an evicted set).
        c.touch(PageId(0x10), 2, false);
        // A live faulted set.
        fault_set(&mut c, 2);
        c.rotate_interval();
        c.rotate_interval();
        let before = c.len();
        assert_eq!(before, 2);
        let sel = c.select_victim(StrategyKind::Lru, 0).unwrap();
        assert_eq!(sel.page.page_set(4), PageSetId(2));
        // The zombie was cleaned up during the scan.
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn counter_stats_classify_counters() {
        let mut c = chain();
        fault_set(&mut c, 1); // 16 = small regular
        fault_set(&mut c, 2);
        for p in PageSetId(2).pages(4) {
            c.touch(p, 2, false);
        } // 48 = large regular
        c.touch(PageId(0x30), 5, false); // 5 = irregular
        let st = c.counter_stats();
        assert_eq!(st.regular, 2);
        assert_eq!(st.irregular, 1);
        assert_eq!(st.small_regular, 1);
        assert_eq!(st.large_regular, 1);
    }

    #[test]
    fn movement_happens_once_per_interval() {
        let mut c = chain();
        c.touch(PageId(0x10), 1, true);
        c.rotate_interval(); // set 1 in middle
        c.touch(PageId(0x11), 1, true); // moves to new
        assert_eq!(c.new_len(), 1);
        // Second touch within the interval: stays at its position in new.
        c.touch(PageId(0x20), 1, true);
        c.touch(PageId(0x12), 1, true);
        // Set 2 remains MRU of new (set 1 did not move again).
        let sel_order: Vec<SetKey> = c.new.iter().copied().collect();
        assert_eq!(sel_order[0].set, PageSetId(1));
        assert_eq!(sel_order[1].set, PageSetId(2));
    }
}
