//! The HPE eviction policy (Section IV), implementing
//! [`uvm_policies::EvictionPolicy`].

use std::collections::{HashMap, VecDeque};

use uvm_policies::{EvictionPolicy, FaultOutcome};
use uvm_types::{ConfigError, PageId, PolicyEvent, PolicyStats, SignalDisruption, StrategyTag};

use crate::adjust::Adjuster;
use crate::chain::PageSetChain;
use crate::classify::{classify, Classification};
use crate::config::{HpeConfig, StrategyKind};
use crate::hir::{HirCache, HirRecord};

/// Consecutive HIR flush opportunities that may be lost before HPE stops
/// trusting its driver-side state and falls back to plain LRU.
const DEGRADE_AFTER_MISSED_FLUSHES: u32 = 2;

/// An HIR flush delayed in transit (partial outage): its PCIe transfer was
/// already paid at send time; the records apply — or are discarded as
/// stale — when the delivery fault count is reached.
#[derive(Debug)]
struct PendingFlush {
    /// Fault count at which the records reach the driver.
    deliver_at: u64,
    /// The transit delay in faults (compared against the staleness bound).
    delay: u64,
    records: Vec<HirRecord>,
}

/// Hierarchical page eviction.
///
/// * Page-walk **hits** are recorded in the GPU-side [`HirCache`] and
///   shipped to the driver every `transfer_interval` faults (or applied
///   immediately when `use_hir` is off — the paper's ideal-transfer
///   sensitivity mode).
/// * Page **faults** update the [`PageSetChain`] directly and drive the
///   interval clock.
/// * At first memory-full the application is classified
///   ([`classify`]) and the eviction strategy chosen; dynamic
///   adjustment ([`Adjuster`]) reacts to wrong evictions thereafter.
/// * Victims are single pages, taken in address order from the page set
///   selected by the active strategy out of the old partition first.
///
/// # Examples
///
/// ```
/// use hpe_core::{Hpe, HpeConfig};
/// use uvm_policies::EvictionPolicy;
/// use uvm_types::PageId;
///
/// let mut hpe = Hpe::new(HpeConfig::paper_default())?;
/// for p in 0..32u64 {
///     hpe.on_fault(PageId(p), p);
/// }
/// hpe.on_memory_full();
/// let victim = hpe.select_victim().expect("resident pages exist");
/// assert!(victim.0 < 32);
/// # Ok::<(), uvm_types::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct Hpe {
    cfg: HpeConfig,
    hir: Option<HirCache>,
    chain: PageSetChain,
    adjuster: Adjuster,
    fault_count: u64,
    faults_in_interval: u32,
    classification: Option<Classification>,
    old_sets_at_full: Option<usize>,
    counters_at_full: Option<Vec<u32>>,
    selections: u64,
    mruc_searches: u64,
    mruc_comparisons: u64,
    lru_comparisons: u64,
    hir_flushes: u64,
    hir_entries_transferred: u64,
    /// Decision-event buffering (`EvictionPolicy::set_tracing`). Purely
    /// observational: no decision may read these fields.
    tracing: bool,
    trace_events: Vec<PolicyEvent>,
    /// Fault count at which each resident page was inserted (tracing
    /// only; empty otherwise).
    resident_since: HashMap<PageId, u64>,
    /// HIR conflict evictions already attributed to a flush event.
    conflicts_reported: u64,
    /// The GPU→driver HIR channel is currently down (injected outage).
    hir_channel_down: bool,
    /// Consecutive flush opportunities lost to the outage.
    missed_flushes: u32,
    /// Degraded LRU-fallback mode is active (signals lost or undefined).
    degraded: bool,
    /// Entry was caused by an undefined classification (all-zero counter
    /// samples at memory-full), so recovery must re-classify.
    classification_pending: bool,
    degraded_entries: u64,
    degraded_faults: u64,
    /// The driver's circuit breaker told the GPU side to stop transferring
    /// flushes (they were being lost in transit anyway); flush contents are
    /// discarded at zero PCIe cost until the breaker closes.
    flush_suspended: bool,
    /// Announced transit delay (in faults) for the next HIR flush.
    next_flush_delay: Option<u64>,
    /// Flushes in transit, ordered by delivery fault count.
    pending_flushes: VecDeque<PendingFlush>,
    late_flushes_applied: u64,
    stale_flushes_dropped: u64,
    suspended_flushes: u64,
}

impl Hpe {
    /// Creates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `cfg` is invalid.
    pub fn new(cfg: HpeConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let hir = cfg
            .use_hir
            .then(|| HirCache::new(cfg.hir, cfg.page_set_shift()));
        let chain = PageSetChain::new(&cfg);
        let adjuster = Adjuster::new(&cfg);
        Ok(Hpe {
            cfg,
            hir,
            chain,
            adjuster,
            fault_count: 0,
            faults_in_interval: 0,
            classification: None,
            old_sets_at_full: None,
            counters_at_full: None,
            selections: 0,
            mruc_searches: 0,
            mruc_comparisons: 0,
            lru_comparisons: 0,
            hir_flushes: 0,
            hir_entries_transferred: 0,
            tracing: false,
            trace_events: Vec::new(),
            resident_since: HashMap::new(),
            conflicts_reported: 0,
            hir_channel_down: false,
            missed_flushes: 0,
            degraded: false,
            classification_pending: false,
            degraded_entries: 0,
            degraded_faults: 0,
            flush_suspended: false,
            next_flush_delay: None,
            pending_flushes: VecDeque::new(),
            late_flushes_applied: 0,
            stale_flushes_dropped: 0,
            suspended_flushes: 0,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &HpeConfig {
        &self.cfg
    }

    /// The classification computed at first memory-full, if reached
    /// (Fig. 9's ratios live here).
    pub fn classification(&self) -> Option<&Classification> {
        self.classification.as_ref()
    }

    /// Page sets in the old partition when memory first filled (gates the
    /// regular-application jump rule).
    pub fn old_sets_at_full(&self) -> Option<usize> {
        self.old_sets_at_full
    }

    /// The per-set counter values snapshotted at first memory-full
    /// (diagnostics: the raw data behind Fig. 9's ratios).
    pub fn counters_at_full(&self) -> Option<&[u32]> {
        self.counters_at_full.as_deref()
    }

    /// The active eviction strategy.
    pub fn strategy(&self) -> StrategyKind {
        self.adjuster.strategy()
    }

    /// Whether the degraded LRU fallback is active (driver signals lost
    /// or classification undefined; Section IV's LRU default made an
    /// explicit resilience mechanism).
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// `(entries, faults)` spent in degraded fallback mode so far.
    pub fn degraded_residency(&self) -> (u64, u64) {
        (self.degraded_entries, self.degraded_faults)
    }

    /// Whether the driver's circuit breaker has suspended flush transfers
    /// (flush contents are discarded at zero PCIe cost until it closes).
    pub fn is_flush_suspended(&self) -> bool {
        self.flush_suspended
    }

    /// `(fault_number, strategy)` timeline (Fig. 13).
    pub fn strategy_timeline(&self) -> &[(u64, StrategyKind)] {
        self.adjuster.timeline()
    }

    /// `(fault_number, jump)` search-point adjustments (Fig. 13).
    pub fn jump_events(&self) -> &[(u64, u32)] {
        self.adjuster.jump_events()
    }

    /// MRU-C victim searches performed and entry comparisons across them
    /// (Fig. 14 reports `comparisons / searches`).
    pub fn mruc_search_overhead(&self) -> (u64, u64) {
        (self.mruc_searches, self.mruc_comparisons)
    }

    /// Page sets divided so far (Section IV-C).
    pub fn divided_sets(&self) -> u64 {
        self.chain.divided_count()
    }

    /// Direct access to the page set chain (diagnostics).
    pub fn chain(&self) -> &PageSetChain {
        &self.chain
    }

    fn apply_hit(&mut self, page: PageId, count: u32) {
        self.chain.touch(page, count, false);
    }

    /// Applies delivered HIR records to the page set chain.
    fn apply_records(&mut self, records: &[HirRecord]) {
        let shift = self.cfg.page_set_shift();
        for rec in records {
            for (off, &c) in rec.counts.iter().enumerate() {
                if c > 0 {
                    let p = rec.set.page_at(shift, off as u32);
                    self.apply_hit(p, u32::from(c));
                }
            }
        }
    }

    /// Delivers flushes whose transit delay has elapsed. Records within the
    /// staleness bound update the chain; older ones describe hits the chain
    /// has already rotated past and are dropped.
    fn deliver_due_flushes(&mut self) {
        while self
            .pending_flushes
            .front()
            .is_some_and(|p| p.deliver_at <= self.fault_count)
        {
            let Some(pending) = self.pending_flushes.pop_front() else {
                break;
            };
            if pending.delay <= u64::from(self.cfg.flush_staleness_faults) {
                self.late_flushes_applied += 1;
                self.apply_records(&pending.records);
            } else {
                self.stale_flushes_dropped += 1;
            }
        }
    }

    fn push_switch_event(&mut self, from: StrategyTag, to: StrategyTag, fault_num: u64) {
        if !self.tracing {
            return;
        }
        let (ratio1, ratio2) = self
            .classification
            .as_ref()
            .map_or((0.0, 0.0), |c| (c.ratio1, c.ratio2));
        self.trace_events.push(PolicyEvent::StrategySwitch {
            from,
            to,
            ratio1,
            ratio2,
            fault_num,
        });
    }

    /// Emits a `StrategySwitch` event if the adjuster's timeline grew past
    /// `switches_before` (tracing only).
    fn note_adjuster_switch(&mut self, switches_before: usize) {
        if !self.tracing {
            return;
        }
        let tl = self.adjuster.timeline();
        if tl.len() > switches_before {
            let (at, to) = tl[tl.len() - 1];
            let from = tl[tl.len() - 2].1;
            self.push_switch_event(from.into(), to.into(), at);
        }
    }

    /// Enters the degraded LRU fallback: driver-side signals are no longer
    /// trustworthy, so classification-driven strategy selection and dynamic
    /// adjustment are suspended until the signals resume.
    fn enter_degraded(&mut self, fault_num: u64) {
        if self.degraded {
            return;
        }
        let from = self.adjuster.strategy().into();
        self.degraded = true;
        self.degraded_entries += 1;
        self.push_switch_event(from, StrategyTag::Degraded, fault_num);
    }

    /// Leaves degraded mode if the signals that forced it are healthy
    /// again: the HIR channel is up and (for an entry caused by an
    /// undefined classification) the counter samples are now defined.
    fn try_recover(&mut self, fault_num: u64) {
        if !self.degraded || self.hir_channel_down {
            return;
        }
        if self.classification_pending {
            let stats = self.chain.counter_stats();
            if stats.regular + stats.irregular == 0 {
                return; // still no samples to classify from
            }
            let classification =
                classify(&stats, self.cfg.ratio1_threshold, self.cfg.ratio2_threshold);
            let old_sets = self.chain.old_len();
            self.adjuster
                .set_category(classification.category, old_sets, fault_num);
            self.classification = Some(classification);
            self.old_sets_at_full = Some(old_sets);
            self.counters_at_full = Some(self.chain.iter_entries().map(|e| e.counter).collect());
            self.classification_pending = false;
        }
        self.degraded = false;
        self.missed_flushes = 0;
        self.push_switch_event(
            StrategyTag::Degraded,
            self.adjuster.strategy().into(),
            fault_num,
        );
    }
}

impl EvictionPolicy for Hpe {
    fn name(&self) -> String {
        "HPE".to_string()
    }

    fn on_walk_hit(&mut self, page: PageId) {
        match &mut self.hir {
            Some(hir) => hir.record(page),
            // Ideal-transfer mode ships each hit over the same GPU→driver
            // channel, just without batching: an outage drops it.
            None if self.hir_channel_down => {}
            None => self.apply_hit(page, 1),
        }
    }

    fn on_fault(&mut self, page: PageId, fault_num: u64) -> FaultOutcome {
        if self.degraded {
            // Driver-side signals are untrusted: no wrong-eviction
            // accounting while the fallback is active.
            self.degraded_faults += 1;
        } else {
            let switches_before = self.adjuster.timeline().len();
            // Wrong-eviction accounting against the active strategy's FIFO.
            self.adjuster.on_fault(page, fault_num);
            self.note_adjuster_switch(switches_before);
        }
        if self.tracing {
            self.resident_since.insert(page, self.fault_count);
        }
        // Faults update the chain (and the bit vector) immediately.
        self.chain.touch(page, 1, true);
        self.fault_count += 1;
        self.faults_in_interval += 1;
        // Flushes delayed in transit (partial outage) land here once their
        // delivery fault count is reached.
        self.deliver_due_flushes();

        let mut outcome = FaultOutcome::default();
        if self
            .fault_count
            .is_multiple_of(u64::from(self.cfg.transfer_interval))
        {
            // Any announced transit delay applies to this flush attempt
            // only, whatever its fate.
            let transit_delay = self.next_flush_delay.take();
            if self.hir_channel_down {
                if self.flush_suspended {
                    // The circuit breaker already told the GPU side to stop
                    // transferring: the recorded hits are discarded locally
                    // at zero PCIe cost.
                    if let Some(hir) = &mut self.hir {
                        let _ = hir.flush();
                        self.suspended_flushes += 1;
                    }
                } else if let Some(hir) = &mut self.hir {
                    // The flush leaves the GPU but never reaches the
                    // driver: the PCIe transfer is wasted and the recorded
                    // hits are lost in transit. The driver-side circuit
                    // breaker counts the loss.
                    let records = hir.flush();
                    if !records.is_empty() {
                        outcome.wasted_transfer_bytes = hir.transfer_bytes(records.len());
                        outcome.lost_flushes = 1;
                    }
                }
                self.missed_flushes += 1;
                if self.missed_flushes >= DEGRADE_AFTER_MISSED_FLUSHES {
                    self.enter_degraded(fault_num);
                }
            } else {
                self.missed_flushes = 0;
                if let Some(hir) = &mut self.hir {
                    let records = hir.flush();
                    if !records.is_empty() {
                        self.hir_flushes += 1;
                        self.hir_entries_transferred += records.len() as u64;
                        if self.tracing {
                            let conflicts = hir.conflict_evictions();
                            self.trace_events.push(PolicyEvent::HirFlush {
                                entries: records.len() as u64,
                                dropped: conflicts - self.conflicts_reported,
                            });
                            self.conflicts_reported = conflicts;
                        }
                        outcome.transfer_bytes = hir.transfer_bytes(records.len());
                        outcome.driver_busy_cycles =
                            records.len() as u64 * self.cfg.update_cycles_per_record;
                        match transit_delay {
                            Some(delay) => {
                                // Partial outage: the transfer is paid now,
                                // but the records arrive `delay` faults
                                // later (or get dropped as stale).
                                self.pending_flushes.push_back(PendingFlush {
                                    deliver_at: self.fault_count + delay,
                                    delay,
                                    records,
                                });
                            }
                            None => self.apply_records(&records),
                        }
                    }
                }
                // A flush opportunity arrived intact: signals are healthy.
                self.try_recover(fault_num);
            }
        }

        if self.faults_in_interval >= self.cfg.interval_len {
            self.faults_in_interval = 0;
            if self.cfg.enable_partitions {
                self.chain.rotate_interval();
            }
            if self.degraded {
                // Intervals spent in the fallback are credited to neither
                // strategy, but a pending classification may retry now that
                // another interval of counter samples accumulated.
                if self.classification_pending {
                    self.try_recover(fault_num);
                }
            } else {
                self.adjuster.end_interval();
            }
        }
        outcome
    }

    fn on_memory_full(&mut self) {
        let stats = self.chain.counter_stats();
        let old_sets = self.chain.old_len();
        self.old_sets_at_full = Some(old_sets);
        self.counters_at_full = Some(self.chain.iter_entries().map(|e| e.counter).collect());
        if stats.regular + stats.irregular == 0 {
            // No counter samples: ratio₁ is 0/0 and Table III's categories
            // are undefined. Fall back to LRU until samples accumulate.
            self.classification_pending = true;
            self.enter_degraded(self.fault_count);
            return;
        }
        let classification = classify(&stats, self.cfg.ratio1_threshold, self.cfg.ratio2_threshold);
        self.adjuster
            .set_category(classification.category, old_sets, self.fault_count);
        self.classification = Some(classification);
    }

    fn select_victim(&mut self) -> Option<PageId> {
        self.selections += 1;
        if self.degraded {
            // Plain LRU over the chain; the adjuster neither chooses the
            // strategy nor records the eviction (its FIFOs would pollute
            // wrong-eviction accounting with fallback decisions).
            let sel = self.chain.select_victim(StrategyKind::Lru, 0)?;
            self.lru_comparisons += sel.comparisons;
            if self.tracing {
                let victim_age = self
                    .resident_since
                    .remove(&sel.page)
                    .map_or(0, |at| self.fault_count.saturating_sub(at));
                self.trace_events.push(PolicyEvent::VictimSelected {
                    page: sel.page,
                    strategy: StrategyTag::Degraded,
                    search_comparisons: sel.comparisons,
                    victim_age,
                });
            }
            return Some(sel.page);
        }
        let strategy = self.adjuster.strategy();
        let sel = self.chain.select_victim(strategy, self.adjuster.jump())?;
        match strategy {
            StrategyKind::MruC => {
                self.mruc_searches += 1;
                self.mruc_comparisons += sel.comparisons;
            }
            StrategyKind::Lru => {
                self.lru_comparisons += sel.comparisons;
            }
        }
        self.adjuster.on_eviction(sel.page);
        if self.tracing {
            let victim_age = self
                .resident_since
                .remove(&sel.page)
                .map_or(0, |at| self.fault_count.saturating_sub(at));
            self.trace_events.push(PolicyEvent::VictimSelected {
                page: sel.page,
                strategy: strategy.into(),
                search_comparisons: sel.comparisons,
                victim_age,
            });
        }
        Some(sel.page)
    }

    fn on_disruption(&mut self, disruption: SignalDisruption) {
        match disruption {
            SignalDisruption::HirChannelDown => self.hir_channel_down = true,
            SignalDisruption::HirChannelUp => self.hir_channel_down = false,
            SignalDisruption::SpuriousWrongEviction { fault_num } => {
                // A corrupted fault report reached the driver: it drives
                // the adjustment machinery exactly like a genuine wrong
                // eviction — unless the fallback already distrusts signals.
                if !self.degraded {
                    let switches_before = self.adjuster.timeline().len();
                    self.adjuster.force_wrong(fault_num);
                    self.note_adjuster_switch(switches_before);
                }
            }
            SignalDisruption::ForcedEviction { page } => {
                // The engine evicted behind our back; only the tracing
                // bookkeeping knows the page (the chain is consulted on the
                // next selection and tolerates stale entries).
                if self.tracing {
                    self.resident_since.remove(&page);
                }
            }
            SignalDisruption::HirCircuitOpen => {
                // The driver stopped receiving our flushes long enough for
                // its circuit breaker to trip: stop paying PCIe cycles for
                // transfers that never arrive. The eviction strategy has
                // normally already degraded (the policy's own
                // missed-flush trigger fires first), but entering here is
                // idempotent and keeps the two mechanisms independent.
                self.flush_suspended = true;
                self.enter_degraded(self.fault_count);
            }
            SignalDisruption::HirCircuitClosed => {
                // Channel restored end-to-end: resume flush transfers.
                // Strategy recovery still waits for the next intact flush
                // opportunity (see `try_recover`).
                self.flush_suspended = false;
            }
            SignalDisruption::HirFlushDelayed { faults } => {
                self.next_flush_delay = Some(faults);
            }
        }
    }

    fn set_tracing(&mut self, enabled: bool) {
        self.tracing = enabled;
        if !enabled {
            self.trace_events.clear();
            self.resident_since.clear();
        }
    }

    fn drain_events(&mut self, sink: &mut dyn FnMut(PolicyEvent)) {
        for e in self.trace_events.drain(..) {
            sink(e);
        }
    }

    fn stats(&self) -> PolicyStats {
        let (intervals_lru, intervals_mruc) = self.adjuster.interval_usage();
        PolicyStats {
            selections: self.selections,
            search_comparisons: self.mruc_comparisons + self.lru_comparisons,
            hir_flushes: self.hir_flushes,
            hir_entries_transferred: self.hir_entries_transferred,
            hir_conflict_evictions: self.hir.as_ref().map_or(0, |h| h.conflict_evictions()),
            strategy_switches: self.adjuster.switches(),
            intervals_lru,
            intervals_mruc,
            page_sets_divided: self.chain.divided_count(),
            degraded_entries: self.degraded_entries,
            degraded_faults: self.degraded_faults,
            late_flushes_applied: self.late_flushes_applied,
            stale_flushes_dropped: self.stale_flushes_dropped,
            suspended_flushes: self.suspended_flushes,
        }
    }

    fn hir_fill(&self) -> u64 {
        self.hir.as_ref().map_or(0, |h| h.touched_len() as u64)
    }

    fn is_degraded(&self) -> bool {
        self.degraded
    }

    fn check_invariants(&self) -> Result<(), String> {
        let (old, middle, new, len) = (
            self.chain.old_len(),
            self.chain.middle_len(),
            self.chain.new_len(),
            self.chain.len(),
        );
        if old + middle + new != len {
            return Err(format!(
                "chain partitions old {old} + middle {middle} + new {new} != length {len}"
            ));
        }
        if let Some(hir) = &self.hir {
            hir.check_invariants()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::Category;

    fn hpe() -> Hpe {
        Hpe::new(HpeConfig::paper_default()).unwrap()
    }

    fn hpe_with(f: impl FnOnce(&mut HpeConfig)) -> Hpe {
        let mut cfg = HpeConfig::paper_default();
        f(&mut cfg);
        Hpe::new(cfg).unwrap()
    }

    /// Faults `n` pages starting at `base`, one per fault number.
    fn fault_range(h: &mut Hpe, base: u64, n: u64, fault_base: u64) {
        for i in 0..n {
            h.on_fault(PageId(base + i), fault_base + i);
        }
    }

    #[test]
    fn faults_advance_intervals() {
        let mut h = hpe();
        fault_range(&mut h, 0, 64, 0);
        // After one interval the first sets rotated into middle.
        assert!(h.chain().middle_len() > 0);
        fault_range(&mut h, 1000, 64, 64);
        assert!(h.chain().old_len() > 0);
    }

    #[test]
    fn classification_streaming_is_regular() {
        let mut h = hpe();
        // Pure streaming: each page faulted once -> counters 16.
        fault_range(&mut h, 0, 256, 0);
        h.on_memory_full();
        let c = h.classification().unwrap();
        assert_eq!(c.category, Category::Regular);
        assert_eq!(h.strategy(), StrategyKind::MruC);
    }

    #[test]
    fn classification_irregular_counters_yield_irregular2() {
        let mut h = hpe_with(|c| c.use_hir = false);
        // Fault partial sets: 5 pages per set -> counters 5 (irregular).
        for set in 0..20u64 {
            for off in 0..5u64 {
                h.on_fault(PageId(set * 16 + off), set * 5 + off);
            }
        }
        h.on_memory_full();
        let c = h.classification().unwrap();
        assert_eq!(c.category, Category::Irregular2);
        assert_eq!(h.strategy(), StrategyKind::Lru);
    }

    #[test]
    fn classification_large_counters_yield_irregular1() {
        let mut h = hpe_with(|c| c.use_hir = false);
        // Each page faulted once then hit twice -> counters 48.
        for set in 0..20u64 {
            for off in 0..16u64 {
                let p = PageId(set * 16 + off);
                h.on_fault(p, set * 16 + off);
                h.on_walk_hit(p);
                h.on_walk_hit(p);
            }
        }
        h.on_memory_full();
        let c = h.classification().unwrap();
        assert_eq!(c.category, Category::Irregular1);
        assert_eq!(h.strategy(), StrategyKind::Lru);
    }

    #[test]
    fn hir_hits_reach_chain_only_at_transfer_interval() {
        let mut h = hpe();
        h.on_fault(PageId(0), 0);
        for _ in 0..5 {
            h.on_walk_hit(PageId(0));
        }
        // Counter so far: 1 (the fault only).
        let (key, _) = h.chain().route(PageId(0));
        assert_eq!(h.chain().entry(key).unwrap().counter, 1);
        // Drive to the 16th fault: flush happens.
        fault_range(&mut h, 100, 15, 1);
        assert!(h.stats().hir_flushes >= 1);
        // 2-bit HIR counter saturates at 3: counter = 1 fault + 3 hits.
        assert_eq!(h.chain().entry(key).unwrap().counter, 4);
        let out_bytes = 10;
        let _ = out_bytes;
    }

    #[test]
    fn flush_reports_transfer_bytes() {
        let mut h = hpe();
        h.on_fault(PageId(0), 0);
        h.on_walk_hit(PageId(0));
        h.on_walk_hit(PageId(32)); // second set
        let mut total_bytes = 0;
        for i in 1..16u64 {
            let out = h.on_fault(PageId(1000 + i), i);
            total_bytes += out.transfer_bytes;
        }
        // Two touched entries x 10 bytes each.
        assert_eq!(total_bytes, 20);
        assert_eq!(h.stats().hir_entries_transferred, 2);
    }

    #[test]
    fn ideal_mode_applies_hits_immediately() {
        let mut h = hpe_with(|c| c.use_hir = false);
        h.on_fault(PageId(0), 0);
        h.on_walk_hit(PageId(0));
        let (key, _) = h.chain().route(PageId(0));
        assert_eq!(h.chain().entry(key).unwrap().counter, 2);
        // No transfer cost in ideal mode.
        let out = h.on_fault(PageId(99), 1);
        assert_eq!(out.transfer_bytes, 0);
    }

    #[test]
    fn victims_come_from_old_partition_first() {
        let mut h = hpe_with(|c| c.use_hir = false);
        // Interval 64: fault 64 pages (sets 0..4) -> rotate; fault 64 more
        // (sets 100..104) -> rotate; now sets 0..4 are old.
        fault_range(&mut h, 0, 64, 0);
        fault_range(&mut h, 1600, 64, 64);
        fault_range(&mut h, 3200, 64, 128);
        h.on_memory_full();
        // Classification is regular -> MRU-C scans the old partition from
        // its MRU end: set 103 (pages 1648..1664), first page in address
        // order.
        assert_eq!(h.strategy(), StrategyKind::MruC);
        let v = h.select_victim().unwrap();
        assert_eq!(v, PageId(1648), "victim must come from old's MRU set");
    }

    #[test]
    fn select_victim_exhausts_all_pages() {
        let mut h = hpe_with(|c| c.use_hir = false);
        fault_range(&mut h, 0, 48, 0);
        h.on_memory_full();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..48 {
            let v = h.select_victim().expect("48 resident pages");
            assert!(seen.insert(v), "duplicate victim {v}");
            assert!(v.0 < 48);
        }
        assert!(h.select_victim().is_none());
    }

    #[test]
    fn replay_against_cyclic_sweep_beats_thrashing() {
        // Full policy over a type II pattern via the shared replay helper:
        // HPE must fault substantially less than the all-miss 400.
        struct Driver {
            h: Hpe,
            resident: std::collections::HashSet<PageId>,
        }
        let mut d = Driver {
            h: hpe_with(|c| c.use_hir = false),
            resident: std::collections::HashSet::new(),
        };
        let capacity = 96; // 6 sets
        let pages = 128u64; // 8 sets
        let mut faults = 0u64;
        let mut notified = false;
        for _ in 0..6 {
            for p in 0..pages {
                let page = PageId(p);
                if d.resident.contains(&page) {
                    d.h.on_walk_hit(page);
                    continue;
                }
                if d.resident.len() == capacity {
                    if !notified {
                        d.h.on_memory_full();
                        notified = true;
                    }
                    let v = d.h.select_victim().unwrap();
                    assert!(d.resident.remove(&v));
                }
                d.h.on_fault(page, faults);
                d.resident.insert(page);
                faults += 1;
            }
        }
        let all_miss = 6 * pages;
        assert!(
            faults < all_miss * 3 / 4,
            "HPE faulted {faults}, worse than 75% of all-miss {all_miss}"
        );
    }

    #[test]
    fn stats_snapshot_is_complete() {
        let mut h = hpe();
        fault_range(&mut h, 0, 8, 0);
        h.on_walk_hit(PageId(0));
        // More faults so a transfer interval passes with the HIR touched.
        fault_range(&mut h, 100, 24, 8);
        h.on_memory_full();
        let _ = h.select_victim();
        let s = h.stats();
        assert_eq!(s.selections, 1);
        assert!(s.hir_flushes >= 1);
    }

    #[test]
    fn partitions_disabled_keeps_everything_in_new() {
        let mut h = hpe_with(|c| {
            c.enable_partitions = false;
            c.use_hir = false;
        });
        fault_range(&mut h, 0, 200, 0);
        assert_eq!(h.chain().old_len(), 0);
        assert_eq!(h.chain().middle_len(), 0);
        assert!(h.chain().new_len() > 0);
        // Eviction still works (falls through to the new partition).
        h.on_memory_full();
        assert!(h.select_victim().is_some());
    }

    #[test]
    fn tracing_emits_victim_and_flush_events() {
        use uvm_types::StrategyTag;

        let mut h = hpe();
        h.set_tracing(true);
        fault_range(&mut h, 0, 8, 0);
        h.on_walk_hit(PageId(0));
        fault_range(&mut h, 100, 24, 8);
        h.on_memory_full();
        let v = h.select_victim().unwrap();
        let mut events = Vec::new();
        h.drain_events(&mut |e| events.push(e));
        assert!(events
            .iter()
            .any(|e| matches!(e, PolicyEvent::HirFlush { entries, .. } if *entries > 0)));
        let victim = events
            .iter()
            .find_map(|e| match *e {
                PolicyEvent::VictimSelected {
                    page,
                    strategy,
                    victim_age,
                    ..
                } => Some((page, strategy, victim_age)),
                _ => None,
            })
            .expect("victim event present");
        assert_eq!(victim.0, v);
        assert_ne!(victim.1, StrategyTag::Native);
        assert!(victim.2 <= 32);
        // Buffer drained; disabling clears bookkeeping.
        let mut n = 0;
        h.drain_events(&mut |_| n += 1);
        assert_eq!(n, 0);
        h.set_tracing(false);
        assert!(h.resident_since.is_empty());
    }

    #[test]
    fn tracing_does_not_change_decisions() {
        let mut traced = hpe_with(|c| c.use_hir = false);
        traced.set_tracing(true);
        let mut plain = hpe_with(|c| c.use_hir = false);
        fault_range(&mut traced, 0, 96, 0);
        fault_range(&mut plain, 0, 96, 0);
        traced.on_memory_full();
        plain.on_memory_full();
        for _ in 0..32 {
            assert_eq!(traced.select_victim(), plain.select_victim());
        }
        assert_eq!(traced.stats(), plain.stats());
    }

    #[test]
    fn hir_outage_degrades_to_lru_and_recovers() {
        let mut h = hpe();
        h.set_tracing(true);
        fault_range(&mut h, 0, 256, 0);
        h.on_memory_full();
        assert_eq!(
            h.strategy(),
            StrategyKind::MruC,
            "streaming classifies MRU-C"
        );
        assert!(!h.is_degraded());

        // Channel goes down: two missed flush opportunities trip the
        // fallback (2 * transfer_interval = 32 faults).
        h.on_disruption(SignalDisruption::HirChannelDown);
        fault_range(&mut h, 10_000, 32, 256);
        assert!(h.is_degraded());
        let (entries, faults) = h.degraded_residency();
        assert_eq!(entries, 1);
        assert_eq!(faults, 0, "faults spent degraded count from the next one");

        // Victims while degraded come from the LRU path and are tagged.
        let v = h.select_victim().expect("resident pages exist");
        assert!(v.0 < 11_000);

        // Faults during the outage are counted but do not feed adjustment.
        fault_range(&mut h, 20_000, 16, 288);
        assert_eq!(h.degraded_residency().1, 16);

        // Channel restored: the next intact flush opportunity recovers.
        // The 16 faults up to that boundary still run degraded.
        h.on_disruption(SignalDisruption::HirChannelUp);
        fault_range(&mut h, 30_000, 16, 304);
        assert!(!h.is_degraded());
        assert_eq!(
            h.strategy(),
            StrategyKind::MruC,
            "nominal strategy restored"
        );

        // The round trip is visible as Degraded strategy-switch events.
        let mut events = Vec::new();
        h.drain_events(&mut |e| events.push(e));
        let switches: Vec<(StrategyTag, StrategyTag)> = events
            .iter()
            .filter_map(|e| match *e {
                PolicyEvent::StrategySwitch { from, to, .. } => Some((from, to)),
                _ => None,
            })
            .collect();
        assert!(switches.contains(&(StrategyTag::MruC, StrategyTag::Degraded)));
        assert!(switches.contains(&(StrategyTag::Degraded, StrategyTag::MruC)));
        let degraded_victims = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    PolicyEvent::VictimSelected {
                        strategy: StrategyTag::Degraded,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(degraded_victims, 1);
        assert_eq!(h.stats().degraded_entries, 1);
        assert_eq!(h.stats().degraded_faults, 32);
    }

    #[test]
    fn zero_sample_memory_full_degrades_then_classifies() {
        let mut h = hpe_with(|c| c.use_hir = false);
        // Memory full before any fault: no counter samples, ratios 0/0.
        h.on_memory_full();
        assert!(h.is_degraded());
        assert!(h.classification().is_none());
        assert_eq!(h.stats().degraded_entries, 1);

        // Samples accumulate; the flush-boundary health check (channel was
        // never down) re-classifies and recovers.
        fault_range(&mut h, 0, 256, 0);
        assert!(!h.is_degraded());
        let c = h.classification().expect("recovery re-classified");
        assert_eq!(c.category, Category::Regular);
        assert_eq!(h.strategy(), StrategyKind::MruC);
    }

    #[test]
    fn spurious_wrong_evictions_drive_adjustment() {
        let mut h = hpe_with(|c| c.use_hir = false);
        // Enough distinct sets that the old partition exceeds the
        // small-footprint threshold (64 sets), so regular apps jump.
        fault_range(&mut h, 0, 1536, 0);
        h.on_memory_full();
        assert_eq!(h.strategy(), StrategyKind::MruC);
        assert!(
            h.old_sets_at_full().unwrap() >= 64,
            "need a large footprint"
        );
        // Injected wrong-eviction signals drive the adjustment machinery
        // exactly like genuine ones: one trigger's worth jumps the point.
        for i in 0..16 {
            h.on_disruption(SignalDisruption::SpuriousWrongEviction {
                fault_num: 2000 + i,
            });
        }
        assert_eq!(h.jump_events(), &[(2015, 16)]);
    }

    #[test]
    fn degraded_mode_ignores_spurious_signals() {
        let mut h = hpe();
        fault_range(&mut h, 0, 256, 0);
        h.on_memory_full();
        h.on_disruption(SignalDisruption::HirChannelDown);
        fault_range(&mut h, 10_000, 32, 256);
        assert!(h.is_degraded());
        for i in 0..64 {
            h.on_disruption(SignalDisruption::SpuriousWrongEviction { fault_num: 400 + i });
        }
        assert!(h.jump_events().is_empty(), "fallback distrusts signals");
    }

    #[test]
    fn delayed_flush_applies_late_within_staleness_bound() {
        let mut h = hpe();
        h.on_fault(PageId(0), 0);
        for _ in 0..5 {
            h.on_walk_hit(PageId(0));
        }
        // Announce a transit delay of 8 faults for the next flush.
        h.on_disruption(SignalDisruption::HirFlushDelayed { faults: 8 });
        // Drive to the flush boundary (fault 16): the transfer is paid but
        // the records are still in transit, so the chain is unchanged.
        let mut transfer = 0;
        for i in 1..16u64 {
            transfer += h.on_fault(PageId(100 + i), i).transfer_bytes;
        }
        assert!(transfer > 0, "transfer is paid at send time");
        let (key, _) = h.chain().route(PageId(0));
        assert_eq!(h.chain().entry(key).unwrap().counter, 1, "not yet applied");
        // Eight more faults: the flush lands and the hits apply.
        fault_range(&mut h, 200, 8, 16);
        assert_eq!(h.chain().entry(key).unwrap().counter, 4, "applied late");
        assert_eq!(h.stats().late_flushes_applied, 1);
        assert_eq!(h.stats().stale_flushes_dropped, 0);
    }

    #[test]
    fn flush_delayed_past_staleness_bound_is_dropped() {
        let mut h = hpe();
        h.on_fault(PageId(0), 0);
        for _ in 0..5 {
            h.on_walk_hit(PageId(0));
        }
        // Staleness bound is 32 (two transfer intervals): a 40-fault delay
        // describes hits the chain has rotated past.
        h.on_disruption(SignalDisruption::HirFlushDelayed { faults: 40 });
        fault_range(&mut h, 100, 15, 1);
        fault_range(&mut h, 200, 48, 16);
        let (key, _) = h.chain().route(PageId(0));
        assert_eq!(h.chain().entry(key).unwrap().counter, 1, "stale: dropped");
        assert_eq!(h.stats().late_flushes_applied, 0);
        assert_eq!(h.stats().stale_flushes_dropped, 1);
    }

    #[test]
    fn lost_flush_reports_wasted_transfer() {
        let mut h = hpe();
        h.on_fault(PageId(0), 0);
        h.on_walk_hit(PageId(0));
        h.on_disruption(SignalDisruption::HirChannelDown);
        let mut lost = 0u32;
        let mut wasted = 0u64;
        for i in 1..16u64 {
            let out = h.on_fault(PageId(100 + i), i);
            lost += out.lost_flushes;
            wasted += out.wasted_transfer_bytes;
            assert_eq!(out.transfer_bytes, 0, "nothing arrives");
        }
        assert_eq!(lost, 1, "one flush left the GPU and was lost");
        assert!(wasted > 0, "its PCIe transfer was wasted");
    }

    #[test]
    fn circuit_breaker_suspends_and_resumes_flush_transfers() {
        let mut h = hpe();
        h.on_fault(PageId(0), 0);
        h.on_walk_hit(PageId(0));
        h.on_disruption(SignalDisruption::HirChannelDown);
        h.on_disruption(SignalDisruption::HirCircuitOpen);
        assert!(h.is_flush_suspended());
        assert!(h.is_degraded(), "breaker-open also degrades the strategy");
        // Suspended flush boundaries discard locally: no waste, no loss.
        let mut any_bytes = 0u64;
        for i in 1..32u64 {
            let out = h.on_fault(PageId(100 + i), i);
            any_bytes += out.transfer_bytes + out.wasted_transfer_bytes;
            assert_eq!(out.lost_flushes, 0);
        }
        assert_eq!(any_bytes, 0, "suspension costs zero PCIe");
        assert_eq!(h.stats().suspended_flushes, 2);
        // Breaker closes with the channel restored: transfers resume.
        h.on_disruption(SignalDisruption::HirChannelUp);
        h.on_disruption(SignalDisruption::HirCircuitClosed);
        assert!(!h.is_flush_suspended());
        h.on_walk_hit(PageId(0));
        let mut resumed = 0u64;
        for i in 32..48u64 {
            resumed += h.on_fault(PageId(200 + i), i).transfer_bytes;
        }
        assert!(resumed > 0, "flush transfers resumed");
        assert!(!h.is_degraded(), "intact flush opportunity recovers");
    }

    #[test]
    fn forced_strategy_used_without_classification() {
        let mut h = hpe_with(|c| {
            c.forced_strategy = Some(StrategyKind::MruC);
            c.use_hir = false;
        });
        fault_range(&mut h, 0, 32, 0);
        assert_eq!(h.strategy(), StrategyKind::MruC);
        assert!(h.select_victim().is_some());
        assert_eq!(h.mruc_search_overhead().0, 1);
    }
}
