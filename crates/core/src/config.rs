//! HPE configuration (the parameters fixed by Section V-A's sensitivity
//! study, plus switches for the paper's sensitivity/ablation modes).

use uvm_types::{ConfigError, HirGeometry, SimConfig};

/// Which eviction strategy HPE applies inside the selected partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Select the page set at the LRU position of the partition.
    Lru,
    /// MRU-counter-based: search from the MRU position (plus the current
    /// jump offset) for a page set whose counter equals the page set size,
    /// falling back to the minimum counter (Section IV-D).
    MruC,
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StrategyKind::Lru => "LRU",
            StrategyKind::MruC => "MRU-C",
        })
    }
}

impl From<StrategyKind> for uvm_types::StrategyTag {
    fn from(kind: StrategyKind) -> Self {
        match kind {
            StrategyKind::Lru => uvm_types::StrategyTag::Lru,
            StrategyKind::MruC => uvm_types::StrategyTag::MruC,
        }
    }
}

/// Configuration of the HPE policy.
///
/// Defaults follow Section V-A: page set size 16, interval 64 faults,
/// ratio₁ threshold 0.3, FIFO depth 128 (two intervals), wrong-eviction
/// trigger 16 (one page set), search-point jump 16, transfer interval 16
/// faults, 8-way 1024-entry HIR.
///
/// # Examples
///
/// ```
/// use hpe_core::HpeConfig;
///
/// let cfg = HpeConfig::paper_default();
/// assert_eq!(cfg.page_set_size, 16);
/// assert_eq!(cfg.interval_len, 64);
/// assert!((cfg.ratio1_threshold - 0.3).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HpeConfig {
    /// Pages per page set (power of two, at most 64).
    pub page_set_size: u32,
    /// Interval length in page faults.
    pub interval_len: u32,
    /// HIR flush ("transfer") interval in page faults.
    pub transfer_interval: u32,
    /// Classification threshold for ratio₁ (Table III).
    pub ratio1_threshold: f64,
    /// Classification threshold for ratio₂ (Table III; the paper uses 2).
    pub ratio2_threshold: f64,
    /// Saturation value of the per-set touch counter (the paper uses 64).
    pub counter_max: u32,
    /// Depth of each strategy's wrong-eviction FIFO (two intervals = 128).
    pub fifo_depth: u32,
    /// Wrong evictions within one interval that trigger dynamic adjustment
    /// (the paper uses one page set = 16).
    pub wrong_eviction_trigger: u32,
    /// Distance the MRU-C search point jumps forward on adjustment.
    pub search_jump: u32,
    /// Regular applications whose old partition holds fewer sets than this
    /// at first memory-full never jump the search point (the paper uses
    /// 4 × page set size).
    pub small_footprint_sets: u32,
    /// HIR geometry.
    pub hir: HirGeometry,
    /// Model the HIR cache and its periodic transfer. When `false`, page
    /// walk hits update the chain directly with no transfer cost (the
    /// "ideal model" used by the paper's sensitivity studies).
    pub use_hir: bool,
    /// Enable dynamic adjustment (Section IV-E). The sensitivity studies
    /// turn it off.
    pub dynamic_adjustment: bool,
    /// Enable page set division (Section IV-C). Off only for ablation.
    pub enable_division: bool,
    /// Enable the old/middle/new partition rotation (Section IV-C). When
    /// off (ablation), every page set stays in one recency chain and the
    /// instant-thrashing protection of the old-partition preference is
    /// lost.
    pub enable_partitions: bool,
    /// Bypass classification and force a strategy (used by the sensitivity
    /// studies, which select the strategy per application manually).
    pub forced_strategy: Option<StrategyKind>,
    /// Host-CPU cycles charged per transferred HIR record for updating the
    /// page set chain (counted toward core load, not the critical path).
    /// Derived from Section V-C's 16.1 µs per 150 records at 1.4 GHz.
    pub update_cycles_per_record: u64,
    /// Oldest delay (in faults) at which a late HIR flush is still applied
    /// to the page set chain. Flushes delivered later than this describe a
    /// hit pattern the chain has already rotated past, so they are dropped
    /// instead of corrupting recency with stale records. Default: two
    /// transfer intervals.
    pub flush_staleness_faults: u32,
}

impl HpeConfig {
    /// The paper's chosen parameters (Section V-A summary).
    pub fn paper_default() -> Self {
        HpeConfig {
            page_set_size: 16,
            interval_len: 64,
            transfer_interval: 16,
            ratio1_threshold: 0.3,
            ratio2_threshold: 2.0,
            counter_max: 64,
            fifo_depth: 128,
            wrong_eviction_trigger: 16,
            search_jump: 16,
            small_footprint_sets: 64,
            hir: HirGeometry::paper_default(),
            use_hir: true,
            dynamic_adjustment: true,
            enable_division: true,
            enable_partitions: true,
            forced_strategy: None,
            update_cycles_per_record: 150,
            flush_staleness_faults: 32,
        }
    }

    /// Derives an HPE configuration from a simulator configuration,
    /// adopting its page set size, interval, transfer interval and HIR
    /// geometry, and scaling the derived parameters the paper ties to the
    /// page set size (FIFO trigger, jump, small-footprint threshold).
    ///
    /// The ratio₁ threshold is raised from the paper's 0.3 to 0.5: at
    /// classification time a roughly constant number of page sets (the
    /// active region, one per in-flight warp group) holds transient,
    /// partially-accumulated counters that read as irregular. With the
    /// paper's 3–130 MB footprints those sets are a negligible share; with
    /// this reproduction's ~8x smaller footprints their share grows by the
    /// same factor, and 0.5 restores the paper's separation margin
    /// (measured: regular applications ≤ 0.23, irregular#2 ≥ 0.90).
    pub fn from_sim(cfg: &SimConfig) -> Self {
        HpeConfig {
            page_set_size: cfg.page_set_size,
            interval_len: cfg.interval_len,
            transfer_interval: cfg.transfer_interval,
            ratio1_threshold: 0.5,
            fifo_depth: 2 * cfg.interval_len,
            wrong_eviction_trigger: cfg.page_set_size,
            search_jump: 16,
            small_footprint_sets: 4 * cfg.page_set_size,
            hir: cfg.hir,
            flush_staleness_faults: 2 * cfg.transfer_interval,
            ..Self::paper_default()
        }
    }

    /// `log2(page_set_size)`.
    pub fn page_set_shift(&self) -> u32 {
        self.page_set_size.trailing_zeros()
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] naming the first offending parameter.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.page_set_size.is_power_of_two() || self.page_set_size > 64 {
            return Err(ConfigError::invalid(
                "page_set_size",
                "must be a power of two at most 64",
            ));
        }
        if self.interval_len == 0 {
            return Err(ConfigError::invalid("interval_len", "must be nonzero"));
        }
        if self.transfer_interval == 0 {
            return Err(ConfigError::invalid("transfer_interval", "must be nonzero"));
        }
        if self.counter_max < self.page_set_size {
            return Err(ConfigError::invalid(
                "counter_max",
                "must be at least page_set_size",
            ));
        }
        if !self.ratio1_threshold.is_finite()
            || self.ratio1_threshold <= 0.0
            || self.ratio1_threshold >= 1.0
        {
            // ratio₁ compares irregular vs. regular set counts; a threshold
            // at or beyond 1 can never separate Table III's categories.
            return Err(ConfigError::invalid(
                "ratio1_threshold",
                "must lie strictly inside (0, 1)",
            ));
        }
        if !self.ratio2_threshold.is_finite() || self.ratio2_threshold <= 0.0 {
            return Err(ConfigError::invalid("ratio2_threshold", "must be positive"));
        }
        if self.fifo_depth == 0 {
            return Err(ConfigError::invalid("fifo_depth", "must be nonzero"));
        }
        if self.wrong_eviction_trigger == 0 {
            return Err(ConfigError::invalid(
                "wrong_eviction_trigger",
                "must be nonzero",
            ));
        }
        if self.flush_staleness_faults == 0 {
            return Err(ConfigError::invalid(
                "flush_staleness_faults",
                "must be nonzero (a zero bound would drop every delayed flush)",
            ));
        }
        self.hir.validate()?;
        Ok(())
    }
}

impl Default for HpeConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_validates() {
        HpeConfig::paper_default().validate().unwrap();
    }

    #[test]
    fn from_sim_scales_derived_parameters() {
        let mut sim = SimConfig::paper_default();
        sim.page_set_size = 8;
        sim.interval_len = 32;
        let cfg = HpeConfig::from_sim(&sim);
        assert_eq!(cfg.page_set_size, 8);
        assert_eq!(cfg.interval_len, 32);
        assert_eq!(cfg.fifo_depth, 64);
        assert_eq!(cfg.wrong_eviction_trigger, 8);
        assert_eq!(cfg.small_footprint_sets, 32);
        cfg.validate().unwrap();
    }

    #[test]
    fn rejects_bad_parameters() {
        let mut cfg = HpeConfig::paper_default();
        cfg.page_set_size = 12;
        assert!(cfg.validate().is_err());

        let mut cfg = HpeConfig::paper_default();
        cfg.counter_max = 8;
        assert!(cfg.validate().is_err());

        let mut cfg = HpeConfig::paper_default();
        cfg.interval_len = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = HpeConfig::paper_default();
        cfg.fifo_depth = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = HpeConfig::paper_default();
        cfg.flush_staleness_faults = 0;
        assert!(cfg.validate().is_err());

        // Degenerate classification thresholds: ratio₁ must separate the
        // categories, so anything outside (0, 1) is rejected.
        for bad in [0.0, 1.0, 1.5, -0.1, f64::NAN, f64::INFINITY] {
            let mut cfg = HpeConfig::paper_default();
            cfg.ratio1_threshold = bad;
            assert!(cfg.validate().is_err(), "ratio1_threshold {bad} accepted");
        }
    }

    #[test]
    fn strategy_kind_displays() {
        assert_eq!(StrategyKind::Lru.to_string(), "LRU");
        assert_eq!(StrategyKind::MruC.to_string(), "MRU-C");
    }
}
