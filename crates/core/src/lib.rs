//! HPE: hierarchical page eviction for GPU unified memory.
//!
//! This crate implements the paper's contribution (Section IV):
//!
//! * the GPU-side **HIR cache** recording page-walk hits ([`HirCache`]),
//! * the driver-side **page set chain** with old/middle/new recency
//!   partitions, saturating counters, fault bit vectors, and page set
//!   **division** ([`PageSetChain`]),
//! * the statistics-based **classifier** ([`classify`], Table III),
//! * **dynamic adjustment** of the eviction strategy (Algorithm 1),
//! * and [`Hpe`], the policy tying them together behind
//!   [`uvm_policies::EvictionPolicy`] so the `uvm-sim` driver can run it
//!   against the baselines.
//!
//! # Examples
//!
//! ```
//! use hpe_core::{Hpe, HpeConfig};
//! use uvm_policies::EvictionPolicy;
//! use uvm_types::PageId;
//!
//! let mut hpe = Hpe::new(HpeConfig::paper_default())?;
//! // Faults and page-walk hits flow in from the GMMU / driver:
//! hpe.on_fault(PageId(0x80000), 0);
//! hpe.on_walk_hit(PageId(0x80000));
//! # Ok::<(), uvm_types::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod adjust;
mod chain;
mod classify;
mod config;
mod hir;
mod policy;

pub use adjust::Adjuster;
pub use chain::{CounterStats, PageSetChain, Partition, Selection, SetEntry, SetKey};
pub use classify::{classify, Category, Classification};
pub use config::{HpeConfig, StrategyKind};
pub use hir::{HirCache, HirRecord};
pub use policy::Hpe;
