//! Property-based tests for the HIR cache: conservation of recorded hits
//! under flush, first-touch ordering, and conflict accounting.

use hpe_core::HirCache;
use proptest::prelude::*;
use std::collections::HashMap;
use uvm_types::{HirGeometry, PageId};

fn geometry() -> impl Strategy<Value = HirGeometry> {
    (1u32..5, 0u32..3).prop_map(|(sets_log2, ways_log2)| {
        let ways = 1 << ways_log2;
        HirGeometry {
            entries: (1 << sets_log2) * ways,
            ways,
            counter_bits: 2,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn flush_never_overreports_hits(
        geom in geometry(),
        pages in proptest::collection::vec(0u64..256, 1..300),
    ) {
        let mut hir = HirCache::new(geom, 4);
        let mut truth: HashMap<(u64, usize), u32> = HashMap::new();
        for &p in &pages {
            hir.record(PageId(p));
            *truth.entry((p >> 4, (p & 15) as usize)).or_insert(0) += 1;
        }
        let records = hir.flush();
        for rec in &records {
            for (off, &c) in rec.counts.iter().enumerate() {
                if c > 0 {
                    let true_count = truth.get(&(rec.set.0, off)).copied().unwrap_or(0);
                    // Counters saturate at 3 and conflicts can only *lose*
                    // information, never invent it.
                    prop_assert!(
                        u32::from(c) <= true_count,
                        "set {} off {off}: reported {c} > true {true_count}",
                        rec.set
                    );
                    prop_assert!(u32::from(c) <= 3);
                }
            }
        }
        // No duplicate sets in one flush.
        let mut seen = std::collections::HashSet::new();
        for rec in &records {
            prop_assert!(seen.insert(rec.set), "set {} flushed twice", rec.set);
        }
        // After a flush the cache is empty.
        prop_assert_eq!(hir.touched_len(), 0);
        prop_assert!(hir.flush().is_empty());
    }

    #[test]
    fn no_conflicts_means_no_information_loss(
        pages in proptest::collection::vec(0u64..128, 1..200),
    ) {
        // 1024-entry HIR over at most 8 distinct sets: never conflicts,
        // so every hit below saturation is reported exactly.
        let mut hir = HirCache::new(HirGeometry::paper_default(), 4);
        let mut truth: HashMap<(u64, usize), u32> = HashMap::new();
        for &p in &pages {
            hir.record(PageId(p));
            *truth.entry((p >> 4, (p & 15) as usize)).or_insert(0) += 1;
        }
        prop_assert_eq!(hir.conflict_evictions(), 0);
        let records = hir.flush();
        let mut reported: HashMap<(u64, usize), u32> = HashMap::new();
        for rec in &records {
            for (off, &c) in rec.counts.iter().enumerate() {
                if c > 0 {
                    reported.insert((rec.set.0, off), u32::from(c));
                }
            }
        }
        for (&key, &t) in &truth {
            prop_assert_eq!(
                reported.get(&key).copied().unwrap_or(0),
                t.min(3),
                "hit count mismatch for {:?}", key
            );
        }
    }
}
