//! Property-based tests for the HIR cache: conservation of recorded hits
//! under flush, first-touch ordering, and conflict accounting.

use hpe_core::HirCache;
use std::collections::HashMap;
use uvm_types::{HirGeometry, PageId};
use uvm_util::prop::Checker;
use uvm_util::Rng;

fn gen_geometry(rng: &mut Rng) -> HirGeometry {
    let sets_log2 = rng.gen_range(1u32..5);
    let ways_log2 = rng.gen_range(0u32..3);
    let ways = 1 << ways_log2;
    HirGeometry {
        entries: (1 << sets_log2) * ways,
        ways,
        counter_bits: 2,
    }
}

#[test]
fn flush_never_overreports_hits() {
    Checker::new().cases(64).run(
        |rng| {
            (
                gen_geometry(rng),
                rng.gen_vec(1..300, |r| r.gen_range(0u64..256)),
            )
        },
        |(geom, pages)| {
            let mut hir = HirCache::new(*geom, 4);
            let mut truth: HashMap<(u64, usize), u32> = HashMap::new();
            for &p in pages {
                hir.record(PageId(p));
                *truth.entry((p >> 4, (p & 15) as usize)).or_insert(0) += 1;
            }
            let records = hir.flush();
            for rec in &records {
                for (off, &c) in rec.counts.iter().enumerate() {
                    if c > 0 {
                        let true_count = truth.get(&(rec.set.0, off)).copied().unwrap_or(0);
                        // Counters saturate at 3 and conflicts can only *lose*
                        // information, never invent it.
                        assert!(
                            u32::from(c) <= true_count,
                            "set {} off {off}: reported {c} > true {true_count}",
                            rec.set
                        );
                        assert!(u32::from(c) <= 3);
                    }
                }
            }
            // No duplicate sets in one flush.
            let mut seen = std::collections::HashSet::new();
            for rec in &records {
                assert!(seen.insert(rec.set), "set {} flushed twice", rec.set);
            }
            // After a flush the cache is empty.
            assert_eq!(hir.touched_len(), 0);
            assert!(hir.flush().is_empty());
        },
    );
}

#[test]
fn no_conflicts_means_no_information_loss() {
    Checker::new().cases(64).run(
        |rng| rng.gen_vec(1..200, |r| r.gen_range(0u64..128)),
        |pages| {
            // 1024-entry HIR over at most 8 distinct sets: never conflicts,
            // so every hit below saturation is reported exactly.
            let mut hir = HirCache::new(HirGeometry::paper_default(), 4);
            let mut truth: HashMap<(u64, usize), u32> = HashMap::new();
            for &p in pages {
                hir.record(PageId(p));
                *truth.entry((p >> 4, (p & 15) as usize)).or_insert(0) += 1;
            }
            assert_eq!(hir.conflict_evictions(), 0);
            let records = hir.flush();
            let mut reported: HashMap<(u64, usize), u32> = HashMap::new();
            for rec in &records {
                for (off, &c) in rec.counts.iter().enumerate() {
                    if c > 0 {
                        reported.insert((rec.set.0, off), u32::from(c));
                    }
                }
            }
            for (&key, &t) in &truth {
                assert_eq!(
                    reported.get(&key).copied().unwrap_or(0),
                    t.min(3),
                    "hit count mismatch for {key:?}"
                );
            }
        },
    );
}
