//! Failure-injection and stress tests for HPE: tiny HIR geometries that
//! conflict constantly, pathological division pressure, and degenerate
//! configurations must never break victim-selection correctness.

use hpe_core::{Hpe, HpeConfig, StrategyKind};
use std::collections::HashSet;
use uvm_policies::EvictionPolicy;
use uvm_types::{HirGeometry, PageId};

/// Drives `policy` with `refs` under `capacity`, asserting residency
/// correctness on every eviction. Returns the fault count.
fn drive(policy: &mut Hpe, refs: &[u64], capacity: usize) -> u64 {
    let mut resident: HashSet<PageId> = HashSet::new();
    let mut faults = 0u64;
    let mut notified = false;
    for &r in refs {
        let page = PageId(r);
        if resident.contains(&page) {
            policy.on_walk_hit(page);
            continue;
        }
        if resident.len() == capacity {
            if !notified {
                policy.on_memory_full();
                notified = true;
            }
            let v = policy.select_victim().expect("victim exists");
            assert!(resident.remove(&v), "victim {v} not resident");
        }
        policy.on_fault(page, faults);
        resident.insert(page);
        faults += 1;
    }
    faults
}

#[test]
fn conflict_storm_in_a_tiny_hir_is_survivable() {
    // A 2-entry direct-mapped HIR under touches to 64 different sets:
    // nearly every record conflicts; correctness must be unaffected.
    let mut cfg = HpeConfig::paper_default();
    cfg.hir = HirGeometry {
        entries: 2,
        ways: 1,
        counter_bits: 2,
    };
    let mut hpe = Hpe::new(cfg).unwrap();
    let refs: Vec<u64> = (0..1024u64).chain(0..1024).chain(0..1024).collect();
    drive(&mut hpe, &refs, 512);
    let stats = hpe.stats();
    assert!(
        stats.hir_conflict_evictions > 10,
        "expected conflicts in a 2-entry HIR, saw {}",
        stats.hir_conflict_evictions
    );
    assert!(stats.hir_flushes > 0);
}

#[test]
fn pathological_division_pressure() {
    // Touch exactly one page per set, hammering counters to saturation:
    // every set wants to divide. Division bookkeeping must stay bounded
    // and evictions correct.
    let mut cfg = HpeConfig::paper_default();
    cfg.use_hir = false;
    let mut hpe = Hpe::new(cfg).unwrap();
    let mut refs = Vec::new();
    for set in 0..64u64 {
        refs.push(set * 16); // fault one page per set
        for _ in 0..70 {
            refs.push(set * 16); // hammer it past saturation
        }
    }
    // Now fault the *other* pages (secondaries).
    for set in 0..64u64 {
        for off in 1..16u64 {
            refs.push(set * 16 + off);
        }
    }
    drive(&mut hpe, &refs, 256);
    assert_eq!(hpe.divided_sets(), 64, "every set divides exactly once");
}

#[test]
fn minimal_page_set_size_works() {
    let mut cfg = HpeConfig::paper_default();
    cfg.page_set_size = 1; // degenerate: page-granular HPE
    cfg.wrong_eviction_trigger = 1;
    cfg.small_footprint_sets = 4;
    let mut hpe = Hpe::new(cfg).unwrap();
    let refs: Vec<u64> = (0..100u64).cycle().take(500).collect();
    let faults = drive(&mut hpe, &refs, 50);
    assert!(faults >= 100);
}

#[test]
fn maximal_page_set_size_works() {
    let mut cfg = HpeConfig::paper_default();
    cfg.page_set_size = 64;
    cfg.counter_max = 256;
    cfg.wrong_eviction_trigger = 64;
    cfg.small_footprint_sets = 256;
    let mut hpe = Hpe::new(cfg).unwrap();
    let refs: Vec<u64> = (0..512u64).cycle().take(2048).collect();
    let faults = drive(&mut hpe, &refs, 256);
    assert!(faults >= 512);
}

#[test]
fn forced_lru_equals_partition_lru_semantics() {
    // With a forced LRU strategy and one interval per page set, HPE's
    // victims always come from the least-recently-touched sets; check it
    // empirically by ensuring a freshly touched set's pages are never the
    // first victims.
    let mut cfg = HpeConfig::paper_default();
    cfg.forced_strategy = Some(StrategyKind::Lru);
    cfg.use_hir = false;
    let mut hpe = Hpe::new(cfg).unwrap();
    // Fill 4 sets' worth of pages in order; capacity forces one eviction.
    let refs: Vec<u64> = (0..64u64).chain([63u64]).chain([64u64]).collect();
    let mut resident: HashSet<PageId> = HashSet::new();
    let mut faults = 0;
    for &r in &refs {
        let page = PageId(r);
        if resident.contains(&page) {
            hpe.on_walk_hit(page);
            continue;
        }
        if resident.len() == 64 {
            hpe.on_memory_full();
            let v = hpe.select_victim().unwrap();
            assert!(
                v.0 < 16,
                "LRU strategy must evict from the oldest set, got {v}"
            );
            resident.remove(&v);
        }
        hpe.on_fault(page, faults);
        resident.insert(page);
        faults += 1;
    }
}

#[test]
fn empty_policy_returns_no_victim() {
    let mut hpe = Hpe::new(HpeConfig::paper_default()).unwrap();
    assert_eq!(hpe.select_victim(), None);
}

#[test]
fn interleaved_hits_for_nonresident_pages_do_not_corrupt() {
    // Stale HIR-style hits (for pages never faulted) must not create
    // evictable state.
    let mut cfg = HpeConfig::paper_default();
    cfg.use_hir = false;
    let mut hpe = Hpe::new(cfg).unwrap();
    for p in 0..100u64 {
        hpe.on_walk_hit(PageId(p + 10_000)); // hits for foreign pages
    }
    hpe.on_fault(PageId(1), 0);
    hpe.on_memory_full();
    assert_eq!(hpe.select_victim(), Some(PageId(1)));
    assert_eq!(hpe.select_victim(), None);
}
