//! Property-based tests for the page set chain's invariants.

use hpe_core::{HpeConfig, PageSetChain, StrategyKind};
use proptest::prelude::*;
use std::collections::HashSet;
use uvm_types::PageId;

#[derive(Debug, Clone)]
enum Op {
    /// Touch page `page` with `count` touches; `fault` marks a page fault.
    Touch { page: u64, count: u32, fault: bool },
    Rotate,
    SelectLru,
    SelectMruc { jump: u32 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0u64..512, 1u32..4, any::<bool>())
            .prop_map(|(page, count, fault)| Op::Touch { page, count, fault }),
        1 => Just(Op::Rotate),
        2 => Just(Op::SelectLru),
        2 => (0u32..20).prop_map(|jump| Op::SelectMruc { jump }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chain_invariants_hold_under_arbitrary_operations(
        ops in proptest::collection::vec(op_strategy(), 1..300)
    ) {
        let cfg = HpeConfig::paper_default();
        let mut chain = PageSetChain::new(&cfg);
        // Model of residency: pages faulted in and not yet evicted.
        let mut resident: HashSet<u64> = HashSet::new();

        for op in ops {
            match op {
                Op::Touch { page, count, fault } => {
                    chain.touch(PageId(page), count, fault);
                    if fault {
                        resident.insert(page);
                    }
                }
                Op::Rotate => chain.rotate_interval(),
                Op::SelectLru | Op::SelectMruc { .. } => {
                    let (strategy, jump) = match op {
                        Op::SelectMruc { jump } => (StrategyKind::MruC, jump),
                        _ => (StrategyKind::Lru, 0),
                    };
                    match chain.select_victim(strategy, jump) {
                        Some(sel) => {
                            // A victim must be a page the model considers
                            // resident, and each eviction removes it.
                            prop_assert!(
                                resident.remove(&sel.page.0),
                                "victim {} not resident", sel.page
                            );
                        }
                        None => {
                            // No victim means no resident pages tracked.
                            prop_assert!(
                                resident.is_empty(),
                                "chain gave up with {} resident pages",
                                resident.len()
                            );
                        }
                    }
                }
            }
            // Partition sizes always sum to the entry count.
            prop_assert!(
                chain.old_len() + chain.middle_len() + chain.new_len()
                    >= chain.len().saturating_sub(0),
            );
        }

        // Draining the chain evicts each remaining resident page exactly once.
        let mut drained = HashSet::new();
        while let Some(sel) = chain.select_victim(StrategyKind::Lru, 0) {
            prop_assert!(drained.insert(sel.page.0), "double eviction");
            prop_assert!(resident.remove(&sel.page.0));
        }
        prop_assert!(resident.is_empty());
    }

    #[test]
    fn counters_saturate_and_divisions_are_stable(
        touches in proptest::collection::vec((0u64..64, 1u32..6), 1..400)
    ) {
        let cfg = HpeConfig::paper_default();
        let mut chain = PageSetChain::new(&cfg);
        let mut first_division: Option<u64> = None;
        for (page, count) in touches {
            chain.touch(PageId(page), count, page % 3 == 0);
            let (key, _) = chain.route(PageId(page));
            if let Some(e) = chain.entry(key) {
                prop_assert!(e.counter <= 64, "counter overflow: {}", e.counter);
                // Resident pages are always a subset of faulted pages.
                prop_assert_eq!(e.resident & !e.bits, 0);
            }
            // Once set 0 divides, its recorded mask never changes.
            if let Some(bits) = chain.division_of(uvm_types::PageSetId(0)) {
                match first_division {
                    None => first_division = Some(bits),
                    Some(prev) => prop_assert_eq!(prev, bits),
                }
            }
        }
    }
}
