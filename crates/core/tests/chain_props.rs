//! Property-based tests for the page set chain's invariants.

use hpe_core::{HpeConfig, PageSetChain, StrategyKind};
use std::collections::HashSet;
use uvm_types::PageId;
use uvm_util::prop::{shrink_vec, Checker};
use uvm_util::Rng;

#[derive(Debug, Clone)]
enum Op {
    /// Touch page `page` with `count` touches; `fault` marks a page fault.
    Touch {
        page: u64,
        count: u32,
        fault: bool,
    },
    Rotate,
    SelectLru,
    SelectMruc {
        jump: u32,
    },
}

fn gen_op(rng: &mut Rng) -> Op {
    match rng.pick_weighted(&[5, 1, 2, 2]) {
        0 => Op::Touch {
            page: rng.gen_range(0u64..512),
            count: rng.gen_range(1u32..4),
            fault: rng.gen_bool(0.5),
        },
        1 => Op::Rotate,
        2 => Op::SelectLru,
        _ => Op::SelectMruc {
            jump: rng.gen_range(0u32..20),
        },
    }
}

#[test]
fn chain_invariants_hold_under_arbitrary_operations() {
    Checker::new().cases(64).run_shrink(
        |rng| rng.gen_vec(1..300, gen_op),
        |ops| {
            shrink_vec(ops)
                .into_iter()
                .filter(|v| !v.is_empty())
                .collect()
        },
        |ops| {
            let cfg = HpeConfig::paper_default();
            let mut chain = PageSetChain::new(&cfg);
            // Model of residency: pages faulted in and not yet evicted.
            let mut resident: HashSet<u64> = HashSet::new();

            for op in ops {
                match *op {
                    Op::Touch { page, count, fault } => {
                        chain.touch(PageId(page), count, fault);
                        if fault {
                            resident.insert(page);
                        }
                    }
                    Op::Rotate => chain.rotate_interval(),
                    Op::SelectLru | Op::SelectMruc { .. } => {
                        let (strategy, jump) = match *op {
                            Op::SelectMruc { jump } => (StrategyKind::MruC, jump),
                            _ => (StrategyKind::Lru, 0),
                        };
                        match chain.select_victim(strategy, jump) {
                            Some(sel) => {
                                // A victim must be a page the model considers
                                // resident, and each eviction removes it.
                                assert!(
                                    resident.remove(&sel.page.0),
                                    "victim {} not resident",
                                    sel.page
                                );
                            }
                            None => {
                                // No victim means no resident pages tracked.
                                assert!(
                                    resident.is_empty(),
                                    "chain gave up with {} resident pages",
                                    resident.len()
                                );
                            }
                        }
                    }
                }
                // Partition sizes always sum to the entry count.
                assert!(
                    chain.old_len() + chain.middle_len() + chain.new_len()
                        >= chain.len().saturating_sub(0),
                );
            }

            // Draining the chain evicts each remaining resident page exactly
            // once.
            let mut drained = HashSet::new();
            while let Some(sel) = chain.select_victim(StrategyKind::Lru, 0) {
                assert!(drained.insert(sel.page.0), "double eviction");
                assert!(resident.remove(&sel.page.0));
            }
            assert!(resident.is_empty());
        },
    );
}

#[test]
fn counters_saturate_and_divisions_are_stable() {
    Checker::new().cases(64).run_shrink(
        |rng| rng.gen_vec(1..400, |r| (r.gen_range(0u64..64), r.gen_range(1u32..6))),
        |touches| {
            shrink_vec(touches)
                .into_iter()
                .filter(|v| !v.is_empty())
                .collect()
        },
        |touches| {
            let cfg = HpeConfig::paper_default();
            let mut chain = PageSetChain::new(&cfg);
            let mut first_division: Option<u64> = None;
            for &(page, count) in touches {
                chain.touch(PageId(page), count, page % 3 == 0);
                let (key, _) = chain.route(PageId(page));
                if let Some(e) = chain.entry(key) {
                    assert!(e.counter <= 64, "counter overflow: {}", e.counter);
                    // Resident pages are always a subset of faulted pages.
                    assert_eq!(e.resident & !e.bits, 0);
                }
                // Once set 0 divides, its recorded mask never changes.
                if let Some(bits) = chain.division_of(uvm_types::PageSetId(0)) {
                    match first_division {
                        None => first_division = Some(bits),
                        Some(prev) => assert_eq!(prev, bits),
                    }
                }
            }
        },
    );
}
