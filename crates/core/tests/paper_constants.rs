//! Pins the HPE parameters the paper fixes in its evaluation (Sections
//! III-IV, Table III) so an accidental retune shows up as a test diff,
//! plus behavioral checks that the two cadences those constants imply —
//! the HIR flush every 16th fault and the partition rotation every 64th —
//! actually fire on schedule.

use hpe_core::{Hpe, HpeConfig};
use uvm_policies::EvictionPolicy;
use uvm_types::{HirGeometry, PageId, SimConfig};

#[test]
fn paper_default_matches_published_constants() {
    let cfg = HpeConfig::paper_default();
    // Structure: 16-page sets, 64-fault intervals, HIR drained every 16
    // faults.
    assert_eq!(cfg.page_set_size, 16);
    assert_eq!(cfg.interval_len, 64);
    assert_eq!(cfg.transfer_interval, 16);
    // Classification thresholds of Table III.
    assert_eq!(cfg.ratio1_threshold, 0.3);
    assert_eq!(cfg.ratio2_threshold, 2.0);
    // Per-set touch counters saturate at 64.
    assert_eq!(cfg.counter_max, 64);
    // Wrong-eviction window spans two intervals (128 faults) and the
    // adjustment trigger is one page set's worth of wrong evictions.
    assert_eq!(cfg.fifo_depth, 128);
    assert_eq!(cfg.fifo_depth, 2 * cfg.interval_len);
    assert_eq!(cfg.wrong_eviction_trigger, 16);
    assert_eq!(cfg.wrong_eviction_trigger, cfg.page_set_size);
    // MRU-C search-point jump and the small-footprint exemption
    // (4 x page set size).
    assert_eq!(cfg.search_jump, 16);
    assert_eq!(cfg.small_footprint_sets, 64);
    assert_eq!(cfg.small_footprint_sets, 4 * cfg.page_set_size);
    // All mechanisms on by default.
    assert!(cfg.use_hir);
    assert!(cfg.dynamic_adjustment);
    assert!(cfg.enable_division);
    assert!(cfg.enable_partitions);
    assert_eq!(cfg.forced_strategy, None);
}

#[test]
fn hir_geometry_matches_paper() {
    let hir = HirGeometry::paper_default();
    assert_eq!(hir.entries, 1024);
    assert_eq!(hir.ways, 8);
    assert_eq!(hir.counter_bits, 2);
    assert_eq!(hir.sets(), 128);
}

#[test]
fn from_sim_ties_derived_parameters_to_sim_config() {
    let sim = SimConfig::paper_default();
    let cfg = HpeConfig::from_sim(&sim);
    assert_eq!(cfg.page_set_size, sim.page_set_size);
    assert_eq!(cfg.interval_len, sim.interval_len);
    assert_eq!(cfg.transfer_interval, sim.transfer_interval);
    assert_eq!(cfg.fifo_depth, 2 * sim.interval_len);
    assert_eq!(cfg.wrong_eviction_trigger, sim.page_set_size);
    assert_eq!(cfg.small_footprint_sets, 4 * sim.page_set_size);
    assert_eq!(cfg.hir, sim.hir);
}

#[test]
fn hir_flushes_every_sixteenth_fault() {
    let mut hpe = Hpe::new(HpeConfig::paper_default()).expect("valid HPE");
    for f in 1..=64u64 {
        // Keep the HIR non-empty so every due flush has something to drain.
        hpe.on_walk_hit(PageId(f % 32));
        hpe.on_fault(PageId(1000 + f), f);
        assert_eq!(
            hpe.stats().hir_flushes,
            f / 16,
            "flush count after fault {f}"
        );
    }
}

#[test]
fn interval_rotates_every_sixty_fourth_fault() {
    let mut hpe = Hpe::new(HpeConfig::paper_default()).expect("valid HPE");
    for f in 1..=256u64 {
        hpe.on_fault(PageId(f % 512), f);
        let s = hpe.stats();
        assert_eq!(
            s.intervals_lru + s.intervals_mruc,
            f / 64,
            "intervals completed after fault {f}"
        );
    }
}
