//! HPE: Hierarchical Page Eviction for GPU unified memory.
//!
//! This facade crate re-exports the whole workspace: the [`hpe_core`] policy
//! (the paper's contribution), the [`uvm_sim`] GPU unified-memory simulator,
//! the [`uvm_workloads`] synthetic application models, the [`uvm_policies`]
//! baseline eviction policies, and the shared [`uvm_types`] vocabulary.
//!
//! See the repository `README.md` for a quickstart and `DESIGN.md` for the
//! system inventory and per-experiment index.

#![forbid(unsafe_code)]

pub use hpe_core as core;
pub use uvm_policies as policies;
pub use uvm_sim as sim;
pub use uvm_types as types;
pub use uvm_util as util;
pub use uvm_workloads as workloads;

pub use hpe_core::{Hpe, HpeConfig};
pub use uvm_types::{Oversubscription, PageId, PageSetId, SimConfig, SimStats};
