//! Analyze a simulation's event stream with the tracing layer: run one
//! application under HPE with an [`EventLog`] attached, then replay the
//! stream through the interval and histogram sinks.
//!
//! ```sh
//! cargo run --release --example trace_analysis           # STN
//! cargo run --release --example trace_analysis -- BFS    # any registered app
//! ```
//!
//! The same sinks accept a stream loaded from a JSONL file (see
//! `hpe-trace` in the bench crate); this example drives them in-process
//! through the facade only.

use hpe::core::{Hpe, HpeConfig};
use hpe::sim::{
    trace_for, EventCounters, IntervalCollector, IntervalKey, SimObserver, Simulation,
    TraceHistograms,
};
use hpe::types::{Oversubscription, SimConfig};
use hpe::workloads::registry;

fn main() {
    let abbr = std::env::args().nth(1).unwrap_or_else(|| "STN".to_string());
    let Some(app) = registry::by_abbr(&abbr) else {
        eprintln!("unknown app '{abbr}'; registered apps:");
        for a in registry::all() {
            eprintln!("  {}", a.abbr());
        }
        std::process::exit(2);
    };

    // Run the app under HPE at 75% oversubscription with an event log.
    let cfg = SimConfig::scaled_default();
    let trace = trace_for(&cfg, app);
    let capacity = Oversubscription::Rate75.capacity_pages(app.footprint_pages());
    let policy = Hpe::new(HpeConfig::from_sim(&cfg)).expect("valid HPE");
    let mut sim = Simulation::new(cfg, &trace, Box::new(policy), capacity).expect("valid sim");
    let log = sim.attach_event_log();
    let outcome = sim.run().expect("run completes");
    let log = std::rc::Rc::try_unwrap(log)
        .expect("sole owner after run")
        .into_inner();
    println!(
        "{}: {} events over {} cycles ({} faults, {} evictions)",
        app.abbr(),
        log.events().len(),
        outcome.stats.cycles,
        outcome.stats.faults(),
        outcome.stats.evictions(),
    );

    // Replay the stream through the analysis sinks. Any observer works on
    // a recorded stream, not just on a live simulation.
    let mut counters = EventCounters::default();
    let mut by_fault = IntervalCollector::new(IntervalKey::Faults(512));
    let mut hists = TraceHistograms::new();
    for &e in log.events() {
        counters.on_event(e);
        by_fault.on_event(e);
        hists.on_event(e);
    }

    println!(
        "\ncounters: {} faults raised / {} serviced, {} evictions ({} wrong), \
         {} page walks ({} hits), {} HIR flushes carrying {} entries",
        counters.faults_raised,
        counters.faults_serviced,
        counters.evictions,
        counters.wrong_evictions,
        counters.page_walks,
        counters.walk_hits,
        counters.hir_flushes,
        counters.hir_entries,
    );

    println!("\nper 512-fault window: faults evictions wrong hir switches");
    for (i, w) in by_fault.rows().iter().enumerate() {
        println!(
            "  window {i:>3}: {:>6} {:>9} {:>5} {:>4} {:>8}",
            w.faults, w.evictions, w.wrong_evictions, w.hir_entries, w.strategy_switches
        );
    }

    // Histograms render as ASCII bar charts; the same values serialize to
    // JSON via `ToJson` for machine consumption.
    println!("{}", hists.inter_fault().render());
    println!("{}", hists.victim_age().render());
    println!("{}", hists.search_comparisons().render());
    println!("{}", hists.hir_flush_entries().render());

    // First-fault-to-service latency pairs come straight off the log.
    let latencies = log.service_latency_series();
    if let Some((page, lat)) = latencies.first() {
        println!(
            "service latencies: {} pairs, first page {:?} took {} cycles",
            latencies.len(),
            page,
            lat
        );
    }
}
