//! Profile the registered workloads' access patterns: reuse (LRU stack)
//! distances and touch counts — the quantities the paper's Fig. 2
//! taxonomy is built on.
//!
//! ```sh
//! cargo run --release --example trace_analysis
//! ```

use hpe::workloads::{analysis, registry};

fn main() {
    println!(
        "{:<5} {:<5} {:>8} {:>9} {:>12} {:>12} {:>12} {:>10}",
        "app", "type", "refs", "distinct", "compulsory%", "median-reuse", "p90-reuse", "max refs"
    );
    for app in registry::all() {
        let seq = app.global_sequence();
        let p = analysis::profile(&seq);
        println!(
            "{:<5} {:<5} {:>8} {:>9} {:>11.0}% {:>12} {:>12} {:>10}",
            app.abbr(),
            app.pattern().roman(),
            p.refs,
            p.distinct,
            100.0 * p.compulsory_fraction,
            p.median_reuse.map_or("-".to_string(), |d| d.to_string()),
            p.p90_reuse.map_or("-".to_string(), |d| d.to_string()),
            p.max_refs_per_page,
        );
    }
    println!(
        "\nreading guide: type I has no finite reuse; type II reuse clusters at the footprint;\n\
         region/window types cluster at the region size; irregular types spread widely."
    );
}
