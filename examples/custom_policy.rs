//! Extending the stack: plug a custom eviction policy into the simulator.
//!
//! Implements a tiny FIFO policy through `EvictionPolicy` and races it
//! against LRU and HPE on a region-moving workload — demonstrating the
//! trait surface a downstream experiment would use.
//!
//! ```sh
//! cargo run --release --example custom_policy
//! ```

use std::collections::VecDeque;

use hpe::core::{Hpe, HpeConfig};
use hpe::policies::{EvictionPolicy, FaultOutcome, Lru};
use hpe::sim::{trace_for, Simulation};
use hpe::types::{Oversubscription, PageId, SimConfig};
use hpe::workloads::registry;

/// First-in, first-out page eviction: the simplest possible policy.
#[derive(Debug, Default)]
struct Fifo {
    queue: VecDeque<PageId>,
}

impl EvictionPolicy for Fifo {
    fn name(&self) -> String {
        "FIFO".to_string()
    }

    fn on_fault(&mut self, page: PageId, _fault_num: u64) -> FaultOutcome {
        self.queue.push_back(page);
        FaultOutcome::default()
    }

    // Walk hits don't reorder a FIFO; the default no-op is exactly right.

    fn select_victim(&mut self) -> Option<PageId> {
        self.queue.pop_front()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SimConfig::scaled_default();
    let app = registry::by_abbr("B+T").expect("registered application");
    let trace = trace_for(&cfg, app);
    let capacity = Oversubscription::Rate75.capacity_pages(app.footprint_pages());

    println!("{app} ({}) at 75% oversubscription\n", app.pattern());

    let fifo = Simulation::new(cfg.clone(), &trace, Fifo::default(), capacity)?.run()?;
    let lru = Simulation::new(cfg.clone(), &trace, Lru::new(), capacity)?.run()?;
    let hpe = Simulation::new(
        cfg.clone(),
        &trace,
        Hpe::new(HpeConfig::from_sim(&cfg))?,
        capacity,
    )?
    .run()?;

    println!(
        "{:>6}  {:>9}  {:>9}  {:>12}",
        "policy", "faults", "evictions", "cycles"
    );
    for (name, s) in [
        ("FIFO", &fifo.stats),
        ("LRU", &lru.stats),
        ("HPE", &hpe.stats),
    ] {
        println!(
            "{name:>6}  {:>9}  {:>9}  {:>12}",
            s.faults(),
            s.evictions(),
            s.cycles
        );
    }
    Ok(())
}
