//! Build a synthetic workload from the Fig. 2 pattern generators and watch
//! how each eviction policy handles it — useful for characterizing a new
//! application before committing to a policy.
//!
//! The workload mixes a thrashing sweep (type II) with a hot region
//! (histogram-bin style), exactly the kind of composite the paper's
//! classifier has to get right.
//!
//! ```sh
//! cargo run --release --example pattern_explorer
//! ```

use hpe::core::{Hpe, HpeConfig};
use hpe::policies::{Lru, RandomPolicy};
use hpe::sim::{ideal_for, Simulation, DEFAULT_TILE};
use hpe::types::SimConfig;
use hpe::util::Rng;
use hpe::workloads::{patterns, Trace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SimConfig::scaled_default();
    let mut rng = Rng::seed_from_u64(7);

    // 1024 sweep pages + 256 hot pages = 1280-page footprint.
    let sweep_pages = 1024u64;
    let hot_pages = 256u64;
    let footprint = sweep_pages + hot_pages;

    // Type II sweep with hot-region interjections every 12 references.
    let base = patterns::thrashing(sweep_pages, 5);
    let global = patterns::with_hot_region(&base, sweep_pages, hot_pages, 12, 2, &mut rng);

    let trace = Trace::from_global(
        &global,
        footprint,
        4,
        cfg.n_sms * cfg.warps_per_sm,
        DEFAULT_TILE,
    );
    let capacity = footprint * 3 / 4; // 75% oversubscription

    println!(
        "composite workload: {} refs over {} pages, {} pages of GPU memory\n",
        trace.total_ops(),
        footprint,
        capacity
    );

    let lru = Simulation::new(cfg.clone(), &trace, Lru::new(), capacity)?.run()?;
    let rnd = Simulation::new(cfg.clone(), &trace, RandomPolicy::seeded(1), capacity)?.run()?;
    let hpe = Simulation::new(
        cfg.clone(),
        &trace,
        Hpe::new(HpeConfig::from_sim(&cfg))?,
        capacity,
    )?
    .run()?;
    let ideal = Simulation::new(cfg.clone(), &trace, ideal_for(&trace), capacity)?.run()?;

    println!(
        "{:>7}  {:>9}  {:>9}  {:>8}",
        "policy", "faults", "evictions", "IPC"
    );
    for (name, s) in [
        ("LRU", &lru.stats),
        ("Random", &rnd.stats),
        ("HPE", &hpe.stats),
        ("Ideal", &ideal.stats),
    ] {
        println!(
            "{name:>7}  {:>9}  {:>9}  {:>8.5}",
            s.faults(),
            s.evictions(),
            s.ipc()
        );
    }

    if let Some(c) = hpe.policy.classification() {
        println!(
            "\nHPE classification: {} (ratio1 {:.2}, ratio2 {:.2}); final strategy {}",
            c.category,
            c.ratio1,
            c.ratio2,
            hpe.policy.strategy()
        );
    }
    Ok(())
}
