//! Quickstart: run one oversubscribed GPU workload under LRU and HPE and
//! compare page faults, evictions, and IPC.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hpe::core::{Hpe, HpeConfig};
use hpe::policies::Lru;
use hpe::sim::{trace_for, Simulation};
use hpe::types::{Oversubscription, SimConfig};
use hpe::workloads::registry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The scaled reproduction configuration: Table I latencies, TLB reach
    // scaled with the synthetic footprints.
    let cfg = SimConfig::scaled_default();

    // hotspot3D: the paper's best case for HPE (type II, thrashing).
    let app = registry::by_abbr("HSD").expect("registered application");
    let trace = trace_for(&cfg, app);

    // Only 75% of the application's footprint fits in GPU memory.
    let rate = Oversubscription::Rate75;
    let capacity = rate.capacity_pages(app.footprint_pages());
    println!(
        "{app}: {} pages footprint, {} pages of GPU memory ({})",
        app.footprint_pages(),
        capacity,
        rate.label()
    );

    // Baseline: page-level LRU.
    let lru = Simulation::new(cfg.clone(), &trace, Lru::new(), capacity)?.run()?;

    // HPE with the paper-default parameters.
    let hpe_policy = Hpe::new(HpeConfig::from_sim(&cfg))?;
    let hpe = Simulation::new(cfg.clone(), &trace, hpe_policy, capacity)?.run()?;

    for (name, stats) in [("LRU", &lru.stats), ("HPE", &hpe.stats)] {
        println!(
            "{name:4}  faults {:>7}  evictions {:>7}  cycles {:>12}  IPC {:.5}",
            stats.faults(),
            stats.evictions(),
            stats.cycles,
            stats.ipc()
        );
    }
    println!(
        "HPE speedup over LRU: {:.2}x  (evictions reduced {:.0}%)",
        lru.stats.cycles as f64 / hpe.stats.cycles as f64,
        100.0 * (1.0 - hpe.stats.evictions() as f64 / lru.stats.evictions().max(1) as f64)
    );

    // HPE classified the application when memory first filled:
    if let Some(c) = hpe.policy.classification() {
        println!(
            "HPE classified {} as {} (ratio1 {:.2}, ratio2 {:.2})",
            app.abbr(),
            c.category,
            c.ratio1,
            c.ratio2
        );
    }
    Ok(())
}
