//! Capacity planning: sweep the oversubscription rate for a workload and
//! watch each policy's fault count — the practical question a deployment
//! faces when choosing how much of a dataset to leave in host memory.
//!
//! ```sh
//! cargo run --release --example oversubscription_sweep [APP]
//! ```
//!
//! `APP` is a paper abbreviation (default: SRD).

use hpe::core::{Hpe, HpeConfig};
use hpe::policies::{ClockPro, ClockProConfig, Lru, Rrip, RripConfig};
use hpe::sim::{ideal_for, trace_for, Simulation};
use hpe::types::{Oversubscription, SimConfig};
use hpe::workloads::registry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let abbr = std::env::args().nth(1).unwrap_or_else(|| "SRD".to_string());
    let app = registry::by_abbr(&abbr)
        .ok_or_else(|| format!("unknown application {abbr:?}; try SRD, HSD, BFS, GEM, ..."))?;
    let cfg = SimConfig::scaled_default();
    let trace = trace_for(&cfg, app);

    println!(
        "{app} ({}), footprint {} pages — faults per policy as GPU memory shrinks\n",
        app.pattern(),
        app.footprint_pages()
    );
    println!(
        "{:>8}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}",
        "memory", "LRU", "RRIP", "CLOCK-Pro", "HPE", "Ideal"
    );

    for pct in [95, 90, 75, 60, 50, 40] {
        let rate = Oversubscription::Custom(pct as f64 / 100.0);
        let capacity = rate.capacity_pages(app.footprint_pages());
        let faults = |stats: hpe::types::SimStats| stats.faults();

        let lru = Simulation::new(cfg.clone(), &trace, Lru::new(), capacity)?.run()?;
        let rrip = Simulation::new(
            cfg.clone(),
            &trace,
            Rrip::new(if app.pattern() == hpe::workloads::PatternType::Thrashing {
                RripConfig::for_thrashing()
            } else {
                RripConfig::default()
            }),
            capacity,
        )?
        .run()?;
        let cp = Simulation::new(
            cfg.clone(),
            &trace,
            ClockPro::new(ClockProConfig::default()),
            capacity,
        )?
        .run()?;
        let hpe_run = Simulation::new(
            cfg.clone(),
            &trace,
            Hpe::new(HpeConfig::from_sim(&cfg))?,
            capacity,
        )?
        .run()?;
        let ideal = Simulation::new(cfg.clone(), &trace, ideal_for(&trace), capacity)?.run()?;

        println!(
            "{:>7}%  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}",
            pct,
            faults(lru.stats),
            faults(rrip.stats),
            faults(cp.stats),
            faults(hpe_run.stats),
            faults(ideal.stats),
        );
    }
    println!(
        "\nCompulsory faults (unconstrained memory): {}",
        trace.distinct_pages()
    );
    Ok(())
}
