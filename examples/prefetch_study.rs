//! Study the sequential-prefetch extension: how prefetch depth trades
//! demand faults against pollution, per policy.
//!
//! ```sh
//! cargo run --release --example prefetch_study [APP]
//! ```

use hpe::core::{Hpe, HpeConfig};
use hpe::policies::Lru;
use hpe::sim::{trace_for, Simulation};
use hpe::types::{Oversubscription, SimConfig};
use hpe::workloads::registry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let abbr = std::env::args().nth(1).unwrap_or_else(|| "HSD".to_string());
    let app = registry::by_abbr(&abbr).ok_or_else(|| format!("unknown app {abbr:?}"))?;
    let rate = Oversubscription::Rate75;

    println!(
        "{app} at {}: sequential prefetch depth sweep\n",
        rate.label()
    );
    println!(
        "{:>6} {:>8} {:>12} {:>11} {:>11} {:>12}",
        "depth", "policy", "demand", "prefetched", "evictions", "cycles"
    );
    for depth in [0u32, 1, 2, 4, 8, 16] {
        let mut cfg = SimConfig::scaled_default();
        cfg.prefetch_pages = depth;
        let trace = trace_for(&cfg, app);
        let capacity = rate.capacity_pages(app.footprint_pages());

        let lru = Simulation::new(cfg.clone(), &trace, Lru::new(), capacity)?.run()?;
        let hpe = Simulation::new(
            cfg.clone(),
            &trace,
            Hpe::new(HpeConfig::from_sim(&cfg))?,
            capacity,
        )?
        .run()?;
        for (name, s) in [("LRU", &lru.stats), ("HPE", &hpe.stats)] {
            println!(
                "{:>6} {:>8} {:>12} {:>11} {:>11} {:>12}",
                depth,
                name,
                s.faults(),
                s.driver.prefetched_pages,
                s.evictions(),
                s.cycles
            );
        }
    }
    println!(
        "\neach 20 us fault service migrates 1 + depth pages (bounded by footprint/capacity);"
    );
    println!("deeper prefetch trades PCIe bytes and eviction pressure for fewer stalls.");
    Ok(())
}
