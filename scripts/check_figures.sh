#!/usr/bin/env sh
# Regenerates the fig13/fig14/fig15 JSON series and diffs their *shape*
# (entry count + per-entry app/rate/key set, via `hpe-trace shape`)
# against the pinned files in tests/shapes/. Shapes deliberately carry
# no measured values, so algorithmic tuning passes but a dropped app,
# missing field, or schema change fails.
#
# Run directly, or via `CHECK_FIGURES=1 scripts/verify.sh`.
set -eu

cd "$(dirname "$0")/.."

echo "==> regenerating fig13/fig14/fig15 series"
for fig in fig13 fig14 fig15; do
    cargo bench -q --offline -p hpe-bench --bench "$fig" >/dev/null
done

echo "==> building hpe-trace"
cargo build -q --release --offline -p hpe-bench --bin hpe-trace

trace=target/release/hpe-trace
status=0
for fig in fig13 fig14 fig15; do
    got=$("$trace" shape "target/paper-results/$fig.json")
    if printf '%s\n' "$got" | diff -u "tests/shapes/$fig.shape" -; then
        echo "==> $fig shape: OK"
    else
        echo "==> $fig shape: MISMATCH (regenerate with:" \
             "$trace shape target/paper-results/$fig.json > tests/shapes/$fig.shape)"
        status=1
    fi
done

exit "$status"
