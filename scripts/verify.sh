#!/usr/bin/env sh
# Full repo verification: formatting, hermetic offline build, and the
# complete workspace test suite (tier-1 is the build + root-package
# tests; this script is a superset).
#
# The workspace has zero external dependencies — `--offline` must
# succeed with an empty registry cache. If it ever starts failing with
# a missing-crate error, a dependency leaked in; see DESIGN.md §7.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release --offline (tier-1 build)"
cargo build --release --offline

echo "==> cargo test -q --offline (tier-1 tests, root package)"
cargo test -q --offline

echo "==> cargo test -q --offline --workspace (all crates)"
cargo test -q --offline --workspace

echo "==> chaos smoke campaign (seeded fault injection, must be panic-free)"
cargo run -q --release --offline -p hpe-bench --bin hpe-chaos -- smoke
cargo run -q --release --offline -p hpe-bench --bin hpe-chaos -- livelock > /dev/null
cargo run -q --release --offline -p hpe-bench --bin hpe-chaos -- livelock --retry > /dev/null

echo "==> checkpoint/resume determinism smoke (STN, checkpoint mid-run)"
# `resume` runs STN straight through, checkpoints a second run mid-flight,
# resumes it in a fresh simulation, and exits nonzero unless the resumed
# SimStats are byte-identical to the uninterrupted run's.
cargo run -q --release --offline -p hpe-bench --bin hpe-chaos -- resume > /dev/null
cargo run -q --release --offline -p hpe-bench --bin hpe-chaos -- resume --plan victim-drop \
    --fallback lru-shadow --retry > /dev/null

echo "==> unwrap/expect gate (non-test sim/core code)"
# The only allowed .unwrap()/.expect() calls in non-test uvm-sim and
# hpe-core code are the pinned internal-invariant sites below (geometry
# re-validation in constructors and just-inserted map lookups). Anything
# new must propagate SimError instead of panicking; see DESIGN.md §9.
unwrap_baseline=7
unwrap_count=$(for f in crates/sim/src/*.rs crates/core/src/*.rs; do
    awk '/^#\[cfg\(test\)\]/{exit}
         {line=$0; sub(/^[ \t]+/,"",line);
          if (line ~ /^\/\//) next;
          if (line ~ /\.unwrap\(|\.expect\(/) print FILENAME": "line}' "$f"
done | tee /dev/stderr | wc -l)
if [ "$unwrap_count" -gt "$unwrap_baseline" ]; then
    echo "error: $unwrap_count unwrap()/expect() calls in non-test sim/core code" \
         "(baseline $unwrap_baseline); convert new ones to SimError/Result."
    exit 1
fi

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy -q --offline --workspace --all-targets -- -D warnings

if [ "${CHECK_FIGURES:-0}" = "1" ]; then
    echo "==> figure shape check (CHECK_FIGURES=1)"
    sh scripts/check_figures.sh
fi

echo "verify: OK"
