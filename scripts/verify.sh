#!/usr/bin/env sh
# Full repo verification: formatting, hermetic offline build, and the
# complete workspace test suite (tier-1 is the build + root-package
# tests; this script is a superset).
#
# The workspace has zero external dependencies — `--offline` must
# succeed with an empty registry cache. If it ever starts failing with
# a missing-crate error, a dependency leaked in; see DESIGN.md §7.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release --offline (tier-1 build)"
cargo build --release --offline

echo "==> cargo test -q --offline (tier-1 tests, root package)"
cargo test -q --offline

echo "==> cargo test -q --offline --workspace (all crates)"
cargo test -q --offline --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy -q --offline --workspace --all-targets -- -D warnings

if [ "${CHECK_FIGURES:-0}" = "1" ]; then
    echo "==> figure shape check (CHECK_FIGURES=1)"
    sh scripts/check_figures.sh
fi

echo "verify: OK"
