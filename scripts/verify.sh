#!/usr/bin/env sh
# Full repo verification: formatting, hermetic offline build, and the
# complete workspace test suite (tier-1 is the build + root-package
# tests; this script is a superset).
#
# The workspace has zero external dependencies — `--offline` must
# succeed with an empty registry cache. If it ever starts failing with
# a missing-crate error, a dependency leaked in; see DESIGN.md §7.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release --offline (tier-1 build)"
cargo build --release --offline

echo "==> cargo test -q --offline (tier-1 tests, root package)"
cargo test -q --offline

echo "==> cargo test -q --offline --workspace (all crates)"
cargo test -q --offline --workspace

echo "==> chaos smoke campaign (seeded fault injection, must be panic-free)"
cargo run -q --release --offline -p hpe-bench --bin hpe-chaos -- smoke
cargo run -q --release --offline -p hpe-bench --bin hpe-chaos -- livelock > /dev/null
cargo run -q --release --offline -p hpe-bench --bin hpe-chaos -- livelock --retry > /dev/null

echo "==> parallel campaign smoke (8 workers, deterministic merge)"
# The chaos campaign fanned over 8 workers must exit 0; the
# parallel-equivalence test suite proves the merged report is
# byte-identical to a serial run, this smoke proves the CLI path works.
cargo run -q --release --offline -p hpe-bench --bin hpe-chaos -- campaign --workers 8 > /dev/null

echo "==> checkpoint/resume determinism smoke (STN, checkpoint mid-run)"
# `resume` runs STN straight through, checkpoints a second run mid-flight,
# resumes it in a fresh simulation, and exits nonzero unless the resumed
# SimStats are byte-identical to the uninterrupted run's.
cargo run -q --release --offline -p hpe-bench --bin hpe-chaos -- resume > /dev/null
cargo run -q --release --offline -p hpe-bench --bin hpe-chaos -- resume --plan victim-drop \
    --fallback lru-shadow --retry > /dev/null

echo "==> hpe-lint: error-discipline gate (replaces the old awk unwrap counter)"
# Every .unwrap()/.expect(/panic! in non-test sim/core/policies code must
# either propagate SimError instead, or carry an inline justification as
# `// lint:allow(unwrap)` at the call site. No central baseline number:
# the allowlist lives next to the code it excuses. See DESIGN.md §10.
cargo run -q --release --offline -p hpe-bench --bin hpe-lint -- check --rules error-discipline

echo "==> hpe-lint: full static analysis (all families incl. call-graph rules)"
# Exit codes: 0 clean, 1 violations (file:line listed above the summary),
# 2 internal error — same convention as hpe-chaos. The sweep includes
# the symbol-aware v2 families (panic-reachability, determinism-taint,
# stale-allow) and must stay interactive: budget 5 s wall clock.
lint_start=$(date +%s)
cargo run -q --release --offline -p hpe-bench --bin hpe-lint -- check
lint_elapsed=$(( $(date +%s) - lint_start ))
if [ "$lint_elapsed" -gt 5 ]; then
    echo "hpe-lint check took ${lint_elapsed}s, over the 5s budget" >&2
    exit 1
fi

echo "==> hpe-lint: golden/fixture self-check (regen must be a no-op)"
# Regenerating the golden diagnostic report must be byte-identical to
# the checked-in file — otherwise the goldens drifted from the fixtures
# (or an intentional diagnostic change forgot to run the regen).
golden=crates/lint/tests/golden/diagnostics.json
cp "$golden" "$golden.pre"
UPDATE_GOLDEN=1 cargo test -q --offline -p uvm-lint --test lint_tests \
    fixture_diagnostics_match_golden_json > /dev/null
if ! cmp -s "$golden" "$golden.pre"; then
    rm -f "$golden.pre"
    echo "golden diagnostics drifted from the fixtures; commit the regen" >&2
    exit 1
fi
rm -f "$golden.pre"

echo "==> invariant sanitizer zero-perturbation proof (STN + SGM, on vs off)"
# Runs HPE with the runtime invariant sanitizer enabled and disabled and
# exits nonzero unless SimStats are byte-identical.
cargo run -q --release --offline -p hpe-bench --bin hpe-chaos -- sanitize > /dev/null

echo "==> profiler smoke (one traced+profiled run, conservation checked)"
# `hpe-trace profile` attaches the cycle-attribution profiler to one
# run and exits 1 if the driver-timeline accounts fail to sum exactly
# to the run's total cycles. See DESIGN.md §12.
cargo run -q --release --offline -p hpe-bench --bin hpe-trace -- profile STN > /dev/null

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy -q --offline --workspace --all-targets -- -D warnings

if [ "${CHECK_FIGURES:-0}" = "1" ]; then
    echo "==> figure shape check (CHECK_FIGURES=1)"
    sh scripts/check_figures.sh
fi

if [ "${CHECK_BENCH:-0}" = "1" ]; then
    echo "==> bench regression gate (CHECK_BENCH=1)"
    # Collects a fresh perf snapshot and compares it against the
    # highest-numbered benchmarks/BENCH_*.json under tolerance: the
    # simulation metrics are deterministic (tight tolerance), the
    # wall-clocks are noisy (loose tolerance, hence the env gate).
    # Exit codes: 0 pass/warn, 1 regression, 2 usage.
    cargo run -q --release --offline -p hpe-bench --bin hpe-lab -- bench-check --workers 8
fi

if [ "${CHECK_EXPLORE:-0}" = "1" ]; then
    echo "==> fault-space exploration smoke (CHECK_EXPLORE=1)"
    # The clean smoke spec must come back counterexample-free (exit 0);
    # the seeded-bad fixture must be found and shrunk (exit 1) and its
    # emitted repro must replay byte-identically (exit 0). See
    # DESIGN.md §13.
    cargo run -q --release --offline -p hpe-bench --bin hpe-chaos -- \
        explore fixtures/explore/smoke.json --workers 4 2> /dev/null > /dev/null
    if cargo run -q --release --offline -p hpe-bench --bin hpe-chaos -- \
        explore fixtures/explore/seeded-bad.json 2> /dev/null > /dev/null; then
        echo "CHECK_EXPLORE: seeded-bad spec unexpectedly came back clean" >&2
        exit 1
    fi
    cargo run -q --release --offline -p hpe-bench --bin hpe-chaos -- \
        replay target/paper-results/explore-repro-0.json > /dev/null
fi

if [ "${CHECK_TENANTS:-0}" = "1" ]; then
    echo "==> multi-tenant isolation smoke (CHECK_TENANTS=1)"
    # A 4-tenant mix on 2 workers must run panic-free (exit 0), and a
    # fault plan scoped to tenant 1 must leave every other tenant's
    # SimStats byte-identical to the fault-free mix — `tenants` exits 1
    # if containment is broken. See DESIGN.md §14.
    cargo run -q --release --offline -p hpe-bench --bin hpe-chaos -- \
        tenants --tenants 4 --workers 2 > /dev/null
    cargo run -q --release --offline -p hpe-bench --bin hpe-chaos -- \
        tenants --tenants 4 --workers 2 --plan signal-chaos --target 1 > /dev/null
    # The saved report must round-trip through the strict parser and
    # render with every tenant ok (exit 0).
    cargo run -q --release --offline -p hpe-bench --bin hpe-trace -- \
        tenants target/paper-results/tenant-mix-faulted.json > /dev/null
fi

if [ "${CHECK_PROFILE:-0}" = "1" ]; then
    echo "==> profiler byte-identity gate (CHECK_PROFILE=1)"
    # Runs STN and SGM with the profiler attached and detached and
    # exits nonzero unless SimStats are byte-identical and the
    # timeline accounts conserve — the observation-only contract.
    cargo run -q --release --offline -p hpe-bench --bin hpe-chaos -- profile
fi

echo "verify: OK"
