//! Golden-trace determinism tests.
//!
//! Each test drives one eviction policy end to end over a fixed-seed
//! workload (`STN`, the smallest registered footprint) at 75%
//! oversubscription, twice, and asserts:
//!
//! 1. the two runs are bit-identical (`SimStats: Eq`), and
//! 2. the stats match a pinned snapshot, serialized through the in-repo
//!    JSON encoder so the whole struct is covered in one comparison.
//!
//! If an intentional change to the engine, a policy, the PRNG, or the
//! workload builders shifts a snapshot, re-pin it from the "actual"
//! string in the assertion failure. An *unintentional* diff here means
//! determinism or replay compatibility broke.

use hpe::core::{Hpe, HpeConfig};
use hpe::policies::{
    ClockPro, ClockProConfig, EvictionPolicy, Lru, RandomPolicy, Rrip, RripConfig,
};
use hpe::sim::{ideal_for, trace_for, Simulation};
use hpe::types::{Oversubscription, SimConfig, SimStats};
use hpe::util::ToJson;
use hpe::workloads::registry;

/// The primary fixture: STN (stencil, 768 pages) under `scaled_default`
/// at 75%.
const APP: &str = "STN";

/// The secondary fixture: SGM (sgemm, 1792 pages), the Type V repetitive
/// thrasher on which HPE's interval classifier alternates between the
/// LRU and MRU-C strategies over the run — churn in the strategy-switch
/// path shows up here even when STN (which settles quickly) is stable.
const APP_TYPE_V: &str = "SGM";

fn run_once(abbr: &str, make: &dyn Fn(&SimConfig) -> Box<dyn EvictionPolicy>) -> SimStats {
    let cfg = SimConfig::scaled_default();
    let app = registry::by_abbr(abbr).expect("registered app");
    let trace = trace_for(&cfg, app);
    let capacity = Oversubscription::Rate75.capacity_pages(app.footprint_pages());
    let policy = make(&cfg);
    Simulation::new(cfg.clone(), &trace, policy, capacity)
        .expect("valid sim")
        .run()
        .expect("run completes")
        .stats
}

fn golden_app(
    name: &str,
    abbr: &str,
    make: &dyn Fn(&SimConfig) -> Box<dyn EvictionPolicy>,
    pinned: &str,
) -> SimStats {
    let first = run_once(abbr, make);
    let second = run_once(abbr, make);
    assert_eq!(first, second, "{name}: two identical runs diverged");
    let actual = first.to_json().to_string();
    assert_eq!(
        actual, pinned,
        "{name}: stats drifted from the pinned snapshot.\nactual: {actual}"
    );
    first
}

fn golden(name: &str, make: &dyn Fn(&SimConfig) -> Box<dyn EvictionPolicy>, pinned: &str) {
    golden_app(name, APP, make, pinned);
}

#[test]
fn trace_generation_is_pinned() {
    // The workload builder feeds every golden run; pin its shape first so
    // a drifted policy snapshot can be told apart from a drifted trace.
    let cfg = SimConfig::scaled_default();
    let app = registry::by_abbr(APP).expect("registered app");
    let a = trace_for(&cfg, app);
    let b = trace_for(&cfg, app);
    assert_eq!(
        a.to_json().to_string(),
        b.to_json().to_string(),
        "trace generation is not deterministic"
    );
    assert_eq!(a.footprint_pages(), 768);
    assert_eq!(a.total_ops(), 4608);
    assert_eq!(a.distinct_pages(), 768);
}

#[test]
fn golden_lru() {
    golden(
        "LRU",
        &|_| Box::new(Lru::new()),
        r#"{"cycles":129024028,"instructions":27648,"mem_accesses":4608,"walks":9216,"walk_hits":4608,"tlb":{"l1_hits":0,"l1_misses":9216,"l2_hits":0,"l2_misses":9216},"driver":{"busy_cycles":129024000,"faults_serviced":4608,"evictions":4032,"wrong_evictions":0,"hit_transfer_cycles":0,"prefetched_pages":0},"policy":{"selections":4032,"search_comparisons":0,"hir_flushes":0,"hir_entries_transferred":0,"hir_conflict_evictions":0,"strategy_switches":0,"intervals_lru":0,"intervals_mruc":0,"page_sets_divided":0,"degraded_entries":0,"degraded_faults":0,"late_flushes_applied":0,"stale_flushes_dropped":0,"suspended_flushes":0},"resilience":{"fallback_victims":0,"injected_delay_cycles":0,"tail_latency_events":0,"congested_services":0,"completions_lost":0,"faults_during_hir_outage":0,"spurious_wrong_evictions":0,"hir_flushes_lost":0,"wasted_flush_cycles":0,"circuit_breaker_trips":0,"delayed_hir_flushes":0,"retry_attempts":0,"retry_backoff_cycles":0,"victims_dropped":0}}"#,
    );
}

#[test]
fn golden_random() {
    golden(
        "Random",
        &|_| Box::new(RandomPolicy::seeded(7)),
        r#"{"cycles":45220672,"instructions":27648,"mem_accesses":4608,"walks":5470,"walk_hits":3344,"tlb":{"l1_hits":0,"l1_misses":6734,"l2_hits":1264,"l2_misses":5470},"driver":{"busy_cycles":45220000,"faults_serviced":1615,"evictions":1039,"wrong_evictions":364,"hit_transfer_cycles":0,"prefetched_pages":0},"policy":{"selections":1039,"search_comparisons":0,"hir_flushes":0,"hir_entries_transferred":0,"hir_conflict_evictions":0,"strategy_switches":0,"intervals_lru":0,"intervals_mruc":0,"page_sets_divided":0,"degraded_entries":0,"degraded_faults":0,"late_flushes_applied":0,"stale_flushes_dropped":0,"suspended_flushes":0},"resilience":{"fallback_victims":0,"injected_delay_cycles":0,"tail_latency_events":0,"congested_services":0,"completions_lost":0,"faults_during_hir_outage":0,"spurious_wrong_evictions":0,"hir_flushes_lost":0,"wasted_flush_cycles":0,"circuit_breaker_trips":0,"delayed_hir_flushes":0,"retry_attempts":0,"retry_backoff_cycles":0,"victims_dropped":0}}"#,
    );
}

#[test]
fn golden_rrip() {
    golden(
        "RRIP",
        &|_| Box::new(Rrip::new(RripConfig::default())),
        r#"{"cycles":129024028,"instructions":27648,"mem_accesses":4608,"walks":9216,"walk_hits":4608,"tlb":{"l1_hits":0,"l1_misses":9216,"l2_hits":0,"l2_misses":9216},"driver":{"busy_cycles":129024000,"faults_serviced":4608,"evictions":4032,"wrong_evictions":0,"hit_transfer_cycles":0,"prefetched_pages":0},"policy":{"selections":4032,"search_comparisons":2322432,"hir_flushes":0,"hir_entries_transferred":0,"hir_conflict_evictions":0,"strategy_switches":0,"intervals_lru":0,"intervals_mruc":0,"page_sets_divided":0,"degraded_entries":0,"degraded_faults":0,"late_flushes_applied":0,"stale_flushes_dropped":0,"suspended_flushes":0},"resilience":{"fallback_victims":0,"injected_delay_cycles":0,"tail_latency_events":0,"congested_services":0,"completions_lost":0,"faults_during_hir_outage":0,"spurious_wrong_evictions":0,"hir_flushes_lost":0,"wasted_flush_cycles":0,"circuit_breaker_trips":0,"delayed_hir_flushes":0,"retry_attempts":0,"retry_backoff_cycles":0,"victims_dropped":0}}"#,
    );
}

#[test]
fn golden_clockpro() {
    golden(
        "CLOCK-Pro",
        &|_| Box::new(ClockPro::new(ClockProConfig::default())),
        r#"{"cycles":129024028,"instructions":27648,"mem_accesses":4608,"walks":9216,"walk_hits":4608,"tlb":{"l1_hits":0,"l1_misses":9216,"l2_hits":0,"l2_misses":9216},"driver":{"busy_cycles":129024000,"faults_serviced":4608,"evictions":4032,"wrong_evictions":448,"hit_transfer_cycles":0,"prefetched_pages":0},"policy":{"selections":4032,"search_comparisons":0,"hir_flushes":0,"hir_entries_transferred":0,"hir_conflict_evictions":0,"strategy_switches":0,"intervals_lru":0,"intervals_mruc":0,"page_sets_divided":0,"degraded_entries":0,"degraded_faults":0,"late_flushes_applied":0,"stale_flushes_dropped":0,"suspended_flushes":0},"resilience":{"fallback_victims":0,"injected_delay_cycles":0,"tail_latency_events":0,"congested_services":0,"completions_lost":0,"faults_during_hir_outage":0,"spurious_wrong_evictions":0,"hir_flushes_lost":0,"wasted_flush_cycles":0,"circuit_breaker_trips":0,"delayed_hir_flushes":0,"retry_attempts":0,"retry_backoff_cycles":0,"victims_dropped":0}}"#,
    );
}

#[test]
fn golden_ideal() {
    golden(
        "Ideal",
        &|cfg| {
            let app = registry::by_abbr(APP).expect("registered app");
            let trace = trace_for(cfg, app);
            Box::new(ideal_for(&trace))
        },
        r#"{"cycles":33628280,"instructions":27648,"mem_accesses":4608,"walks":4978,"walk_hits":3487,"tlb":{"l1_hits":0,"l1_misses":6099,"l2_hits":1121,"l2_misses":4978},"driver":{"busy_cycles":33628000,"faults_serviced":1201,"evictions":625,"wrong_evictions":76,"hit_transfer_cycles":0,"prefetched_pages":0},"policy":{"selections":625,"search_comparisons":0,"hir_flushes":0,"hir_entries_transferred":0,"hir_conflict_evictions":0,"strategy_switches":0,"intervals_lru":0,"intervals_mruc":0,"page_sets_divided":0,"degraded_entries":0,"degraded_faults":0,"late_flushes_applied":0,"stale_flushes_dropped":0,"suspended_flushes":0},"resilience":{"fallback_victims":0,"injected_delay_cycles":0,"tail_latency_events":0,"congested_services":0,"completions_lost":0,"faults_during_hir_outage":0,"spurious_wrong_evictions":0,"hir_flushes_lost":0,"wasted_flush_cycles":0,"circuit_breaker_trips":0,"delayed_hir_flushes":0,"retry_attempts":0,"retry_backoff_cycles":0,"victims_dropped":0}}"#,
    );
}

#[test]
fn golden_hpe_sgm() {
    let stats = golden_app(
        "HPE/SGM",
        APP_TYPE_V,
        &|cfg| Box::new(Hpe::new(HpeConfig::from_sim(cfg)).expect("valid HPE")),
        r#"{"cycles":62105186,"instructions":39424,"mem_accesses":5632,"walks":7848,"walk_hits":5404,"tlb":{"l1_hits":0,"l1_misses":8076,"l2_hits":228,"l2_misses":7848},"driver":{"busy_cycles":62292507,"faults_serviced":2218,"evictions":874,"wrong_evictions":159,"hit_transfer_cycles":1157,"prefetched_pages":0},"policy":{"selections":874,"search_comparisons":33203,"hir_flushes":138,"hir_entries_transferred":1249,"hir_conflict_evictions":0,"strategy_switches":0,"intervals_lru":21,"intervals_mruc":13,"page_sets_divided":0,"degraded_entries":0,"degraded_faults":0,"late_flushes_applied":0,"stale_flushes_dropped":0,"suspended_flushes":0},"resilience":{"fallback_victims":0,"injected_delay_cycles":0,"tail_latency_events":0,"congested_services":0,"completions_lost":0,"faults_during_hir_outage":0,"spurious_wrong_evictions":0,"hir_flushes_lost":0,"wasted_flush_cycles":0,"circuit_breaker_trips":0,"delayed_hir_flushes":0,"retry_attempts":0,"retry_backoff_cycles":0,"victims_dropped":0}}"#,
    );
    // The reason this app is pinned: both strategies must stay in play.
    assert!(stats.policy.intervals_lru > 0, "SGM must run LRU intervals");
    assert!(
        stats.policy.intervals_mruc > 0,
        "SGM must run MRU-C intervals"
    );
}

#[test]
fn golden_hpe() {
    golden(
        "HPE",
        &|cfg| Box::new(Hpe::new(HpeConfig::from_sim(cfg)).expect("valid HPE")),
        r#"{"cycles":70784920,"instructions":27648,"mem_accesses":4608,"walks":7136,"walk_hits":4608,"tlb":{"l1_hits":0,"l1_misses":7136,"l2_hits":0,"l2_misses":7136},"driver":{"busy_cycles":70924542,"faults_serviced":2528,"evictions":1952,"wrong_evictions":409,"hit_transfer_cycles":892,"prefetched_pages":0},"policy":{"selections":1952,"search_comparisons":38608,"hir_flushes":158,"hir_entries_transferred":931,"hir_conflict_evictions":0,"strategy_switches":0,"intervals_lru":9,"intervals_mruc":30,"page_sets_divided":0,"degraded_entries":0,"degraded_faults":0,"late_flushes_applied":0,"stale_flushes_dropped":0,"suspended_flushes":0},"resilience":{"fallback_victims":0,"injected_delay_cycles":0,"tail_latency_events":0,"congested_services":0,"completions_lost":0,"faults_during_hir_outage":0,"spurious_wrong_evictions":0,"hir_flushes_lost":0,"wasted_flush_cycles":0,"circuit_breaker_trips":0,"delayed_hir_flushes":0,"retry_attempts":0,"retry_backoff_cycles":0,"victims_dropped":0}}"#,
    );
}
