//! Golden event-stream tests.
//!
//! Companion to `golden_trace.rs`: where that file pins the final
//! `SimStats` of each policy, this one pins a digest of the *event
//! stream* the tracing layer emits for the same fixture (STN at 75%
//! oversubscription, `scaled_default`). The digest covers the event
//! count per kind plus the first and last timestamps, so any change to
//! event emission sites, ordering of the head/tail, or policy-decision
//! instrumentation shows up here even when the aggregate stats stay
//! unchanged.
//!
//! Each policy runs twice: the two digests must match each other
//! (stream determinism) and the pinned snapshot. Re-pin intentional
//! changes from the "actual" string in the failure message.

use std::collections::BTreeMap;

use hpe::core::{Hpe, HpeConfig};
use hpe::policies::{ClockPro, ClockProConfig, EvictionPolicy, Lru, Rrip, RripConfig};
use hpe::sim::{trace_for, FaultPlan, SimEvent, Simulation};
use hpe::types::{Oversubscription, SimConfig};
use hpe::workloads::registry;

const APP: &str = "STN";

fn digest(events: &[SimEvent]) -> String {
    let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    for e in events {
        *counts.entry(e.kind()).or_insert(0) += 1;
    }
    let first = events.first().map_or(0, |e| e.time());
    let last = events.last().map_or(0, |e| e.time());
    let kinds: Vec<String> = counts.iter().map(|(k, n)| format!("{k}={n}")).collect();
    format!(
        "n={} first={} last={} {}",
        events.len(),
        first,
        last,
        kinds.join(" ")
    )
}

fn run_digest(
    make: &dyn Fn(&SimConfig) -> Box<dyn EvictionPolicy>,
    plan: Option<&FaultPlan>,
) -> String {
    let cfg = SimConfig::scaled_default();
    let app = registry::by_abbr(APP).expect("registered app");
    let trace = trace_for(&cfg, app);
    let capacity = Oversubscription::Rate75.capacity_pages(app.footprint_pages());
    let mut sim = Simulation::new(cfg.clone(), &trace, make(&cfg), capacity).expect("valid sim");
    if let Some(p) = plan {
        sim.set_fault_plan(p.clone()).expect("valid plan");
    }
    let log = sim.attach_event_log();
    sim.run().expect("run completes");
    let log = std::rc::Rc::try_unwrap(log).expect("sole owner after run");
    digest(log.into_inner().events())
}

fn golden_with_plan(
    name: &str,
    make: &dyn Fn(&SimConfig) -> Box<dyn EvictionPolicy>,
    plan: Option<&FaultPlan>,
    pinned: &str,
) {
    let first = run_digest(make, plan);
    let second = run_digest(make, plan);
    assert_eq!(first, second, "{name}: event streams of two runs diverged");
    assert_eq!(
        first, pinned,
        "{name}: event digest drifted from the pinned snapshot.\nactual: {first}"
    );
}

fn golden(name: &str, make: &dyn Fn(&SimConfig) -> Box<dyn EvictionPolicy>, pinned: &str) {
    golden_with_plan(name, make, None, pinned);
}

#[test]
fn golden_events_lru() {
    golden(
        "LRU",
        &|_| Box::new(Lru::new()),
        "n=22465 first=0 last=129024000 Eviction=4032 FaultRaised=4608 FaultServiced=4608 MemoryFull=1 PageWalk=9216",
    );
}

#[test]
fn golden_events_rrip() {
    golden(
        "RRIP",
        &|_| Box::new(Rrip::new(RripConfig::default())),
        // Identical to LRU's digest: on this fixture RRIP also faults on
        // every access and never evicts wrongly; only its (policy-internal)
        // comparison counts differ, which the stream does not carry for
        // baselines.
        "n=22465 first=0 last=129024000 Eviction=4032 FaultRaised=4608 FaultServiced=4608 MemoryFull=1 PageWalk=9216",
    );
}

#[test]
fn golden_events_clockpro() {
    golden(
        "CLOCK-Pro",
        &|_| Box::new(ClockPro::new(ClockProConfig::default())),
        "n=22913 first=0 last=129024000 Eviction=4032 FaultRaised=4608 FaultServiced=4608 MemoryFull=1 PageWalk=9216 WrongEviction=448",
    );
}

#[test]
fn golden_events_hpe() {
    golden(
        "HPE",
        &|cfg| Box::new(Hpe::new(HpeConfig::from_sim(cfg)).expect("valid HPE")),
        // HPE is the only policy here with decision events: VictimSelected
        // per eviction plus HirFlush batches.
        "n=16664 first=0 last=70784892 Eviction=1952 FaultRaised=2528 FaultServiced=2528 HirFlush=158 MemoryFull=1 PageWalk=7136 VictimSelected=1952 WrongEviction=409",
    );
}

#[test]
fn golden_events_hpe_degraded() {
    // The same fixture under the seeded `signal_chaos` plan: periodic HIR
    // outages force HPE into its degraded LRU fallback and back, which
    // must show up as StrategySwitch events (Degraded transitions) in a
    // reproducible stream. Re-pin from "actual" on intentional changes to
    // injection or degradation logic.
    golden_with_plan(
        "HPE/signal-chaos",
        &|cfg| Box::new(Hpe::new(HpeConfig::from_sim(cfg)).expect("valid HPE")),
        Some(&FaultPlan::signal_chaos(2019)),
        "n=11362 first=0 last=47600451 Eviction=1124 FaultRaised=1700 FaultServiced=1700 HirFlush=60 MemoryFull=1 PageWalk=5345 StrategySwitch=7 VictimSelected=1124 WrongEviction=301",
    );
}

#[test]
fn degraded_run_emits_degraded_strategy_switches() {
    use hpe::types::StrategyTag;

    let cfg = SimConfig::scaled_default();
    let app = registry::by_abbr(APP).expect("registered app");
    let trace = trace_for(&cfg, app);
    let capacity = Oversubscription::Rate75.capacity_pages(app.footprint_pages());
    let hpe = Hpe::new(HpeConfig::from_sim(&cfg)).expect("valid HPE");
    let mut sim = Simulation::new(
        cfg,
        &trace,
        Box::new(hpe) as Box<dyn EvictionPolicy>,
        capacity,
    )
    .expect("valid sim");
    sim.set_fault_plan(FaultPlan::signal_chaos(2019))
        .expect("valid plan");
    let log = sim.attach_event_log();
    sim.run().expect("run completes");
    let log = std::rc::Rc::try_unwrap(log).expect("sole owner after run");
    let events = log.into_inner();
    let mut into_degraded = 0u32;
    let mut out_of_degraded = 0u32;
    for e in events.events() {
        if let SimEvent::StrategySwitch { from, to, .. } = *e {
            into_degraded += u32::from(to == StrategyTag::Degraded);
            out_of_degraded += u32::from(from == StrategyTag::Degraded);
        }
    }
    assert!(
        into_degraded > 0,
        "signal-chaos must push HPE into degraded mode at least once"
    );
    assert!(
        out_of_degraded > 0,
        "HPE must recover from degraded mode once the HIR channel returns"
    );
}
