//! Integration tests asserting the paper's qualitative result shapes on
//! the full stack (workloads -> simulator -> policies).

use hpe::core::{Hpe, HpeConfig};
use hpe::policies::{EvictionPolicy, Lru};
use hpe::sim::{ideal_for, trace_for, Simulation};
use hpe::types::{Oversubscription, SimConfig, SimStats};
use hpe::workloads::registry;

fn cfg() -> SimConfig {
    SimConfig::scaled_default()
}

fn run<P: EvictionPolicy>(abbr: &str, rate: Oversubscription, policy: P) -> SimStats {
    let app = registry::by_abbr(abbr).expect("registered app");
    let c = cfg();
    let trace = trace_for(&c, app);
    let capacity = rate.capacity_pages(app.footprint_pages());
    Simulation::new(c, &trace, policy, capacity)
        .expect("valid sim")
        .run()
        .expect("run completes")
        .stats
}

fn run_lru(abbr: &str, rate: Oversubscription) -> SimStats {
    run(abbr, rate, Lru::new())
}

fn run_hpe(abbr: &str, rate: Oversubscription) -> SimStats {
    run(abbr, rate, Hpe::new(HpeConfig::from_sim(&cfg())).unwrap())
}

fn run_ideal(abbr: &str, rate: Oversubscription) -> SimStats {
    let app = registry::by_abbr(abbr).expect("registered app");
    let c = cfg();
    let trace = trace_for(&c, app);
    let capacity = rate.capacity_pages(app.footprint_pages());
    let ideal = ideal_for(&trace);
    Simulation::new(c, &trace, ideal, capacity)
        .expect("valid sim")
        .run()
        .expect("run completes")
        .stats
}

#[test]
fn hpe_beats_lru_on_thrashing_apps() {
    // The paper's headline: large gains on type II (Fig. 10).
    for abbr in ["SRD", "HSD", "MRQ", "STN"] {
        let lru = run_lru(abbr, Oversubscription::Rate75);
        let hpe = run_hpe(abbr, Oversubscription::Rate75);
        assert!(
            (hpe.faults() as f64) < 0.8 * lru.faults() as f64,
            "{abbr}: HPE {} faults vs LRU {} — expected a large reduction",
            hpe.faults(),
            lru.faults()
        );
        assert!(
            hpe.cycles < lru.cycles,
            "{abbr}: HPE should finish faster than LRU"
        );
    }
}

#[test]
fn hpe_matches_lru_on_lru_friendly_apps() {
    // Types I and VI: HPE performs similarly to LRU (within ~15%).
    for abbr in ["HOT", "LEU", "2DC", "B+T", "HYB"] {
        let lru = run_lru(abbr, Oversubscription::Rate75);
        let hpe = run_hpe(abbr, Oversubscription::Rate75);
        let ratio = hpe.cycles as f64 / lru.cycles as f64;
        assert!(
            ratio < 1.15,
            "{abbr}: HPE {:.2}x LRU cycles — should be near parity",
            ratio
        );
    }
}

#[test]
fn ideal_lower_bounds_every_policy_on_evictions() {
    for abbr in ["SRD", "BFS", "GEM", "NW", "HIS"] {
        let ideal = run_ideal(abbr, Oversubscription::Rate75);
        for (name, stats) in [
            ("LRU", run_lru(abbr, Oversubscription::Rate75)),
            ("HPE", run_hpe(abbr, Oversubscription::Rate75)),
        ] {
            assert!(
                ideal.evictions() <= stats.evictions() + 16,
                "{abbr}: Ideal evicted {} but {name} evicted {}",
                ideal.evictions(),
                stats.evictions()
            );
        }
    }
}

#[test]
fn oversubscription_50_is_harder_than_75() {
    for abbr in ["SRD", "GEM", "BFS"] {
        let f75 = run_lru(abbr, Oversubscription::Rate75).faults();
        let f50 = run_lru(abbr, Oversubscription::Rate50).faults();
        assert!(
            f50 >= f75,
            "{abbr}: 50% rate should fault at least as much as 75% ({f50} vs {f75})"
        );
    }
}

#[test]
fn streaming_apps_fault_compulsory_only() {
    // Type I single-pass workloads miss only on first touch, independent
    // of the policy: eviction choice cannot matter when nothing is reused.
    for abbr in ["LEU", "2DC"] {
        let app = registry::by_abbr(abbr).unwrap();
        let lru = run_lru(abbr, Oversubscription::Rate75);
        assert_eq!(lru.faults(), app.footprint_pages());
        let hpe = run_hpe(abbr, Oversubscription::Rate75);
        assert_eq!(hpe.faults(), app.footprint_pages());
    }
}

#[test]
fn accounting_invariant_faults_evictions_capacity() {
    // Every serviced fault migrates one page in; evictions are the only
    // way out. So faults - evictions = pages resident at the end.
    for abbr in ["HSD", "NW", "HIS", "B+T"] {
        let app = registry::by_abbr(abbr).unwrap();
        for rate in [Oversubscription::Rate75, Oversubscription::Rate50] {
            let stats = run_lru(abbr, rate);
            let capacity = rate.capacity_pages(app.footprint_pages());
            assert_eq!(
                stats.faults() - stats.evictions(),
                capacity,
                "{abbr}@{}: residency accounting broken",
                rate.label()
            );
        }
    }
}

#[test]
fn average_speedup_is_in_papers_band() {
    // Across a representative mix (one app per pattern type), HPE's
    // geomean speedup over LRU at 75% should land clearly above 1 —
    // the paper reports 1.34x over all 23.
    let mix = ["HOT", "HSD", "PAT", "BFS", "SPV", "B+T"];
    let mut product = 1.0f64;
    for abbr in mix {
        let lru = run_lru(abbr, Oversubscription::Rate75);
        let hpe = run_hpe(abbr, Oversubscription::Rate75);
        product *= lru.cycles as f64 / hpe.cycles as f64;
    }
    let geomean = product.powf(1.0 / mix.len() as f64);
    assert!(
        geomean > 1.05,
        "geomean speedup {geomean:.3} not clearly above 1"
    );
    assert!(
        geomean < 3.0,
        "geomean speedup {geomean:.3} implausibly high"
    );
}
