//! Cross-product integration test: every eviction policy on a
//! representative application per pattern type, at both oversubscription
//! rates, checking the engine/policy contract end to end.

use hpe::core::{Hpe, HpeConfig};
use hpe::policies::{
    ArcPolicy, Bip, Clock, ClockPro, ClockProConfig, Dip, EvictionPolicy, Lfu, Lru, RandomPolicy,
    Rrip, RripConfig, WsClock, WsClockConfig,
};
use hpe::sim::{ideal_for, trace_for, Simulation};
use hpe::types::{Oversubscription, SimConfig, SimStats};
use hpe::workloads::registry;

fn policies() -> Vec<Box<dyn EvictionPolicy>> {
    let cfg = SimConfig::scaled_default();
    vec![
        Box::new(Lru::new()),
        Box::new(RandomPolicy::seeded(7)),
        Box::new(Lfu::new()),
        Box::new(Clock::new()),
        Box::new(WsClock::new(WsClockConfig::default())),
        Box::new(Rrip::new(RripConfig::default())),
        Box::new(Rrip::new(RripConfig::for_thrashing())),
        Box::new(ClockPro::new(ClockProConfig::default())),
        Box::new(Bip::new()),
        Box::new(Dip::new()),
        Box::new(ArcPolicy::new()),
        Box::new(Hpe::new(HpeConfig::from_sim(&cfg)).expect("valid HPE")),
    ]
}

fn check(abbr: &str, rate: Oversubscription) {
    let cfg = SimConfig::scaled_default();
    let app = registry::by_abbr(abbr).expect("registered app");
    let trace = trace_for(&cfg, app);
    let capacity = rate.capacity_pages(app.footprint_pages());
    let distinct = trace.distinct_pages();
    let total_ops = trace.total_ops();

    let ideal: SimStats = Simulation::new(cfg.clone(), &trace, ideal_for(&trace), capacity)
        .expect("valid sim")
        .run()
        .expect("run completes")
        .stats;

    for policy in policies() {
        let name = policy.name();
        let stats = Simulation::new(cfg.clone(), &trace, policy, capacity)
            .expect("valid sim")
            .run()
            .expect("run completes")
            .stats;
        // Contract invariants, for every policy on every workload:
        assert_eq!(
            stats.mem_accesses, total_ops,
            "{abbr}/{name}: every op must execute exactly once"
        );
        assert!(
            stats.faults() >= distinct,
            "{abbr}/{name}: fewer faults than compulsory"
        );
        assert_eq!(
            stats.faults() - stats.evictions(),
            capacity.min(distinct),
            "{abbr}/{name}: residency conservation violated"
        );
        assert!(
            stats.faults() >= ideal.faults(),
            "{abbr}/{name}: beat Belady ({} < {})",
            stats.faults(),
            ideal.faults()
        );
        assert!(
            stats.cycles > 0 && stats.ipc() > 0.0,
            "{abbr}/{name}: no progress"
        );
    }
}

#[test]
fn matrix_type_i_streaming() {
    check("LEU", Oversubscription::Rate75);
}

#[test]
fn matrix_type_ii_thrashing() {
    check("STN", Oversubscription::Rate75);
    check("STN", Oversubscription::Rate50);
}

#[test]
fn matrix_type_iii_part_repetitive() {
    check("BKP", Oversubscription::Rate75);
}

#[test]
fn matrix_type_iv_most_repetitive() {
    check("MVT", Oversubscription::Rate50);
}

#[test]
fn matrix_type_v_repetitive_thrashing() {
    check("HIS", Oversubscription::Rate75);
}

#[test]
fn matrix_type_vi_region_moving() {
    check("B+T", Oversubscription::Rate50);
}
