//! Integration tests for the extension features: the workload builder,
//! simulation observers, prefetching, and fault batching — exercised
//! through the full public API.

use hpe::core::{Hpe, HpeConfig};
use hpe::policies::Lru;
use hpe::sim::{SimEvent, Simulation};
use hpe::types::{Oversubscription, SimConfig};
use hpe::workloads::{registry, WorkloadBuilder};

#[test]
fn custom_workload_runs_end_to_end() {
    let cfg = SimConfig::scaled_default();
    let workload = WorkloadBuilder::new("stencil-like")
        .region("grid", 512)
        .region("halo", 64)
        .stream("halo")
        .unwrap()
        .sweeps("grid", 4)
        .unwrap()
        .build()
        .unwrap();
    let trace = workload.trace(cfg.n_sms * cfg.warps_per_sm, 2, 3);
    let capacity = workload.footprint_pages() * 3 / 4;
    let lru = Simulation::new(cfg.clone(), &trace, Lru::new(), capacity)
        .unwrap()
        .run()
        .expect("run completes")
        .stats;
    let hpe = Simulation::new(
        cfg.clone(),
        &trace,
        Hpe::new(HpeConfig::from_sim(&cfg)).unwrap(),
        capacity,
    )
    .unwrap()
    .run()
    .expect("run completes")
    .stats;
    // A cyclic-sweep composite behaves like type II: HPE clearly ahead.
    assert!(
        hpe.faults() < lru.faults(),
        "HPE {} !< LRU {}",
        hpe.faults(),
        lru.faults()
    );
}

#[test]
fn observer_timeline_matches_statistics_for_hpe() {
    let cfg = SimConfig::scaled_default();
    let app = registry::by_abbr("STN").unwrap();
    let trace = hpe::sim::trace_for(&cfg, app);
    let capacity = Oversubscription::Rate75.capacity_pages(app.footprint_pages());
    let mut sim = Simulation::new(
        cfg.clone(),
        &trace,
        Hpe::new(HpeConfig::from_sim(&cfg)).unwrap(),
        capacity,
    )
    .unwrap();
    let log = sim.attach_event_log();
    let outcome = sim.run().expect("run completes");
    let log = log.borrow();
    assert_eq!(log.fault_count() as u64, outcome.stats.faults());
    assert_eq!(log.eviction_count() as u64, outcome.stats.evictions());
    // MemoryFull is recorded once, before the first eviction.
    let full_at = log
        .events()
        .iter()
        .find_map(|e| match e {
            SimEvent::MemoryFull { time } => Some(*time),
            _ => None,
        })
        .expect("memory fills");
    let first_eviction = log
        .events()
        .iter()
        .find_map(|e| match e {
            SimEvent::Eviction { time, .. } => Some(*time),
            _ => None,
        })
        .expect("evictions happen");
    assert!(full_at <= first_eviction);
    // The fault-rate series is front-loaded for a thrashing app at 75%:
    // some faults happen in every phase of execution.
    let series = log.fault_rate_series(outcome.stats.cycles / 10 + 1);
    assert!(series.iter().filter(|&&n| n > 0).count() >= 8);
}

#[test]
fn prefetch_and_batching_compose() {
    let app = registry::by_abbr("LEU").unwrap();
    let mut cfg = SimConfig::scaled_default();
    cfg.prefetch_pages = 4;
    cfg.fault_batch = 8;
    let trace = hpe::sim::trace_for(&cfg, app);
    let capacity = Oversubscription::Rate75.capacity_pages(app.footprint_pages());
    let stats = Simulation::new(cfg, &trace, Lru::new(), capacity)
        .unwrap()
        .run()
        .expect("run completes")
        .stats;
    // Everything still adds up with both features on.
    let inserted = stats.faults() + stats.driver.prefetched_pages;
    assert!(inserted >= app.footprint_pages());
    assert_eq!(inserted - stats.evictions(), capacity);
    assert!(stats.driver.prefetched_pages > 0);
}

#[test]
fn builder_workload_classifies_sensibly() {
    // A histogram-like composite should classify irregular#2 like HIS.
    let cfg = SimConfig::scaled_default();
    let workload = WorkloadBuilder::new("histo-like")
        .seed(11)
        .region("bins", 512)
        .region("input", 1024)
        .stream("bins")
        .unwrap()
        .hot_mix("input", "bins", 8, 3)
        .unwrap()
        .hot_mix("input", "bins", 8, 3)
        .unwrap()
        .build()
        .unwrap();
    let trace = workload.trace(cfg.n_sms * cfg.warps_per_sm, 2, 3);
    let capacity = workload.footprint_pages() * 3 / 4;
    let outcome = Simulation::new(
        cfg.clone(),
        &trace,
        Hpe::new(HpeConfig::from_sim(&cfg)).unwrap(),
        capacity,
    )
    .unwrap()
    .run()
    .expect("run completes");
    let c = outcome.policy.classification().expect("memory fills");
    assert!(
        c.ratio1 > 0.5,
        "hot-bin composite should have irregular counters, ratio1 {}",
        c.ratio1
    );
}
