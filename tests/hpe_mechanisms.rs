//! Integration tests for HPE's individual mechanisms observed end-to-end
//! through the simulator (classification, division, adjustment, HIR).

use hpe::core::{Category, Hpe, HpeConfig, StrategyKind};
use hpe::sim::{trace_for, Simulation};
use hpe::types::{Oversubscription, SimConfig};
use hpe::workloads::registry;

fn run_hpe(abbr: &str, rate: Oversubscription) -> (hpe::types::SimStats, Hpe) {
    let cfg = SimConfig::scaled_default();
    let app = registry::by_abbr(abbr).expect("registered app");
    let trace = trace_for(&cfg, app);
    let capacity = rate.capacity_pages(app.footprint_pages());
    let policy = Hpe::new(HpeConfig::from_sim(&cfg)).unwrap();
    let outcome = Simulation::new(cfg, &trace, policy, capacity)
        .expect("valid sim")
        .run()
        .expect("run completes");
    (outcome.stats, outcome.policy)
}

fn category_of(abbr: &str) -> Category {
    let (_, hpe) = run_hpe(abbr, Oversubscription::Rate75);
    hpe.classification()
        .unwrap_or_else(|| panic!("{abbr}: memory never filled"))
        .category
}

#[test]
fn thrashing_and_streaming_apps_classify_regular() {
    for abbr in [
        "HOT", "LEU", "2DC", "GEM", "SRD", "HSD", "MRQ", "STN", "PAT", "BKP",
    ] {
        assert_eq!(
            category_of(abbr),
            Category::Regular,
            "{abbr} should classify regular"
        );
    }
}

#[test]
fn irregular_counter_apps_classify_irregular2() {
    for abbr in ["KMN", "SAD", "BFS", "HIS", "MVT", "NW"] {
        assert_eq!(
            category_of(abbr),
            Category::Irregular2,
            "{abbr} should classify irregular#2"
        );
    }
}

#[test]
fn large_counter_apps_classify_irregular1() {
    for abbr in ["B+T", "HYB", "SPV", "HWL"] {
        assert_eq!(
            category_of(abbr),
            Category::Irregular1,
            "{abbr} should classify irregular#1"
        );
    }
}

#[test]
fn regular_apps_start_with_mruc_and_irregular_with_lru() {
    let (_, hpe) = run_hpe("HSD", Oversubscription::Rate75);
    assert_eq!(hpe.strategy_timeline()[0].1, StrategyKind::MruC);
    let (_, hpe) = run_hpe("B+T", Oversubscription::Rate75);
    assert_eq!(hpe.strategy_timeline()[0].1, StrategyKind::Lru);
    // irregular#1 never switches.
    assert_eq!(hpe.strategy_timeline().len(), 1);
}

#[test]
fn nw_divides_page_sets() {
    // Section IV-C: NW's even/odd phases force page set division.
    let (_, hpe) = run_hpe("NW", Oversubscription::Rate75);
    assert!(
        hpe.divided_sets() > 0,
        "NW must divide page sets (got {})",
        hpe.divided_sets()
    );
}

#[test]
fn streaming_apps_do_not_divide() {
    for abbr in ["LEU", "2DC"] {
        let (_, hpe) = run_hpe(abbr, Oversubscription::Rate75);
        assert_eq!(hpe.divided_sets(), 0, "{abbr} should not divide sets");
    }
}

#[test]
fn bfs_switches_away_from_lru() {
    // Fig. 13: BFS starts LRU (irregular#2), then the embedded thrashing
    // pattern triggers wrong evictions and a switch to MRU-C.
    let (_, hpe) = run_hpe("BFS", Oversubscription::Rate75);
    let tl = hpe.strategy_timeline();
    assert_eq!(tl[0].1, StrategyKind::Lru, "BFS must start with LRU");
    assert!(
        tl.iter().any(|&(_, s)| s == StrategyKind::MruC),
        "BFS must switch to MRU-C at some point; timeline {tl:?}"
    );
}

#[test]
fn hir_flushes_happen_and_carry_entries() {
    let (stats, _) = run_hpe("HSD", Oversubscription::Rate75);
    assert!(stats.policy.hir_flushes > 0, "HSD must flush the HIR");
    assert!(stats.policy.hir_entries_transferred > 0);
    assert!(
        stats.driver.hit_transfer_cycles > 0,
        "transfer latency charged"
    );
}

#[test]
fn mruc_apps_report_search_overhead() {
    let (_, hpe) = run_hpe("STN", Oversubscription::Rate75);
    let (searches, comparisons) = hpe.mruc_search_overhead();
    assert!(searches > 0, "STN runs MRU-C");
    let avg = comparisons as f64 / searches as f64;
    assert!(
        avg < 100.0,
        "average MRU-C search overhead {avg:.1} should be modest (paper: <50)"
    );
}

#[test]
fn lru_only_apps_never_search_with_mruc() {
    for abbr in ["B+T", "HYB"] {
        let (_, hpe) = run_hpe(abbr, Oversubscription::Rate75);
        assert_eq!(
            hpe.mruc_search_overhead().0,
            0,
            "{abbr} uses LRU for its whole execution"
        );
    }
}

#[test]
fn small_footprint_regular_apps_never_jump() {
    // STN's old partition at first full is below 4x page-set-size sets,
    // so the search point must never jump (Section IV-E).
    let (_, hpe) = run_hpe("STN", Oversubscription::Rate75);
    if let Some(old) = hpe.old_sets_at_full() {
        if old < 64 {
            assert!(
                hpe.jump_events().is_empty(),
                "STN has a small footprint; jumping is disabled"
            );
        }
    }
}

#[test]
fn classification_happens_once_memory_fills() {
    let (_, hpe) = run_hpe("HSD", Oversubscription::Rate50);
    assert!(hpe.classification().is_some());
    assert!(hpe.old_sets_at_full().is_some());
}
